//! Execution-plane trace schema and barrier-stall analyzer.
//!
//! An [`ExecTrace`] is the wire form of the core's execution-plane
//! recorder (`sct-core::exec`, exported by `sctsim run --exec-trace
//! FILE`): wall-clock records of how the epoch machinery actually ran —
//! per-epoch election/merge/re-attach windows on the coordinator, one
//! [`BurstRecord`] per elected shard with its worker slot and wall
//! window, and one [`RunRecord`] per classic (plane/fallback) run. All
//! timestamps are monotonic microseconds since the recorder was
//! attached; *nothing* here is virtual time except the horizon-slack
//! annotations, which are copied from the (deterministic) election
//! snapshots.
//!
//! The export is a single JSON document that is simultaneously:
//!
//! * a Chrome-trace/Perfetto file (`traceEvents` key — one tid per
//!   worker thread with nested burst slices, barrier slices on the
//!   coordinator track, counter tracks for elected shards and pending
//!   events) loadable in `ui.perfetto.dev`; and
//! * the structured record (`exec` key) that [`ExecTrace::from_json`]
//!   parses back and [`ExecTrace::analyze`] decomposes.
//!
//! [`ExecReport`] renders the Amdahl-style verdict `sctsim exec FILE`
//! prints: serialization fraction, per-shard load-imbalance ratio
//! (max/mean burst events), stall attribution (tight horizons vs
//! foreign-push buffering vs small-burst inline fallback), and a
//! one-line bottleneck verdict reconciled against the merged
//! `LoopProfiler` barrier phase carried in [`ExecTrace::profile`].

use crate::snapshot::ProfileSnapshot;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One shard's epoch burst: which worker slot ran it, its wall window,
/// and what the burst saw.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BurstRecord {
    /// The elected shard.
    pub shard: u32,
    /// Worker slot that executed the burst (0 = the coordinator thread).
    pub worker: u32,
    /// Burst start, microseconds since the recorder attached.
    pub start_us: f64,
    /// Burst end, microseconds.
    pub end_us: f64,
    /// Events the burst processed (discarded stale wakes excluded).
    pub events: u64,
    /// Events pending on the shard at election.
    pub pending: u64,
    /// Cross-shard pushes the burst buffered for the barrier.
    pub foreign_pushes: u64,
    /// Virtual-time slack between the shard's head and the epoch
    /// horizon at election (`None` when the epoch was unbounded).
    pub slack_secs: Option<f64>,
    /// `true` when the burst stalled at the horizon with work pending.
    pub stalled: bool,
}

impl BurstRecord {
    /// Burst wall duration, seconds.
    pub fn wall_secs(&self) -> f64 {
        ((self.end_us - self.start_us) / 1e6).max(0.0)
    }
}

/// One parallel epoch: coordinator phase windows, the offload decision,
/// and the elected shards' bursts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Election start (barrier entry), microseconds.
    pub elect_start_us: f64,
    /// Election + worker-loading end, microseconds.
    pub elect_end_us: f64,
    /// Merge start (all bursts joined), microseconds.
    pub merge_start_us: f64,
    /// Merge end (logs interleaved, emissions replayed), microseconds.
    pub merge_end_us: f64,
    /// Re-attach end (run summaries emitted, shells restored).
    pub reattach_end_us: f64,
    /// Total events pending on the elected shards at election.
    pub pending: u64,
    /// `true` when bursts were dispatched to worker threads; `false`
    /// when they ran inline on the coordinator.
    pub offloaded: bool,
    /// Worker threads the offload used (1 when inline).
    pub threads_used: u32,
    /// One record per elected shard, in election (head-key) order.
    pub bursts: Vec<BurstRecord>,
}

impl EpochRecord {
    /// The burst phase's wall window: latest end minus earliest start.
    pub fn burst_span_secs(&self) -> f64 {
        let lo = self
            .bursts
            .iter()
            .map(|b| b.start_us)
            .fold(f64::MAX, f64::min);
        let hi = self
            .bursts
            .iter()
            .map(|b| b.end_us)
            .fold(f64::MIN, f64::max);
        if self.bursts.is_empty() {
            0.0
        } else {
            ((hi - lo) / 1e6).max(0.0)
        }
    }

    /// Sum of the bursts' own wall durations, seconds.
    pub fn burst_busy_secs(&self) -> f64 {
        self.bursts.iter().map(BurstRecord::wall_secs).sum()
    }

    /// Events across all bursts.
    pub fn events(&self) -> u64 {
        self.bursts.iter().map(|b| b.events).sum()
    }

    /// Max/mean burst event count — the epoch's load-imbalance ratio.
    /// 1.0 for perfectly balanced epochs and single-burst epochs.
    pub fn imbalance(&self) -> f64 {
        let n = self.bursts.len();
        let total = self.events();
        if n == 0 || total == 0 {
            return 1.0;
        }
        let max = self.bursts.iter().map(|b| b.events).max().unwrap_or(0);
        max as f64 * n as f64 / total as f64
    }
}

/// One classic run (the plane run between epochs, or every run of an
/// ineligible/single-shard config): barrier window + drain window on
/// the coordinator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// The elected shard.
    pub shard: u32,
    /// Barrier (election) start, microseconds.
    pub elect_start_us: f64,
    /// Election end / drain start, microseconds.
    pub elect_end_us: f64,
    /// Drain end, microseconds.
    pub end_us: f64,
    /// Events the run processed.
    pub events: u64,
    /// Events pending on the shard at election.
    pub pending: u64,
    /// Virtual-time slack to the cross-shard horizon at election
    /// (`None` on the monolithic loop).
    pub slack_secs: Option<f64>,
    /// `true` when the run stalled at the horizon with work pending.
    pub stalled: bool,
}

/// A complete execution-plane recording of one trial. See the module
/// docs for the dual JSON form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecTrace {
    /// Schema version (1).
    pub version: u32,
    /// Event-loop shards the run was configured with.
    pub shards: u32,
    /// Worker threads the run was configured with.
    pub threads: u32,
    /// The offload threshold (pending events) the run used.
    pub offload_min_events: u64,
    /// Wall seconds from recorder attach to trace finish.
    pub wall_secs: f64,
    /// Parallel epochs, in execution order.
    pub epochs: Vec<EpochRecord>,
    /// Classic runs, in execution order.
    pub runs: Vec<RunRecord>,
    /// The run's merged `LoopProfiler` report, for reconciling the
    /// recorder's barrier accounting against the loop's own.
    pub profile: ProfileSnapshot,
}

/// Wrapper that keeps a parsed JSON tree as-is (used to reach the
/// `exec` key of the combined Perfetto document).
struct RawValue(serde::Value);

impl serde::Deserialize for RawValue {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(RawValue(v.clone()))
    }
}

impl ExecTrace {
    /// Parses a trace from the combined export: accepts either the
    /// combined `{"traceEvents": [...], "exec": {...}}` document or a
    /// bare `ExecTrace` object.
    pub fn from_json(text: &str) -> Result<ExecTrace, String> {
        let raw: RawValue =
            serde_json::from_str(text).map_err(|e| format!("invalid exec trace: {e}"))?;
        let map = raw
            .0
            .as_map()
            .ok_or_else(|| "invalid exec trace: not a JSON object".to_string())?;
        let body = map
            .iter()
            .find(|(k, _)| k == "exec")
            .map(|(_, v)| v)
            .unwrap_or(&raw.0);
        <ExecTrace as serde::Deserialize>::from_value(body)
            .map_err(|e| format!("invalid exec trace: {e}"))
    }

    /// Serialises the combined document: a Perfetto `traceEvents` array
    /// plus the structured trace under `exec`.
    pub fn to_json(&self) -> String {
        let body = serde_json::to_string(self).expect("exec trace serialises");
        format!(
            "{{\"traceEvents\":[\n{}\n],\n\"exec\":{body}}}\n",
            self.perfetto_events().join(",\n")
        )
    }

    /// Parallel epochs recorded (the core's `epochs_run`).
    pub fn epochs_run(&self) -> u64 {
        self.epochs.len() as u64
    }

    /// Bursts dispatched to worker threads.
    pub fn bursts_offloaded(&self) -> u64 {
        self.epochs
            .iter()
            .filter(|e| e.offloaded)
            .map(|e| e.bursts.len() as u64)
            .sum()
    }

    /// Bursts that ran inline on the coordinator.
    pub fn bursts_inline(&self) -> u64 {
        self.epochs
            .iter()
            .filter(|e| !e.offloaded)
            .map(|e| e.bursts.len() as u64)
            .sum()
    }

    /// Events recorded across epochs and classic runs.
    pub fn total_events(&self) -> u64 {
        self.epochs.iter().map(EpochRecord::events).sum::<u64>()
            + self.runs.iter().map(|r| r.events).sum::<u64>()
    }

    /// The Chrome-trace events of the combined export, one JSON object
    /// per string. Track layout: pid 1 = the execution plane; tid 0 is
    /// the coordinator thread (barrier slices, inline bursts, classic
    /// runs), tid `k ≥ 1` is worker slot `k`; counter tracks for the
    /// elected-shard count and pending events sample at every election.
    fn perfetto_events(&self) -> Vec<String> {
        let mut ev: Vec<String> = Vec::new();
        ev.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"execution plane\"}}"
                .to_string(),
        );
        ev.push(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"coordinator\"}}"
                .to_string(),
        );
        let max_worker = self
            .epochs
            .iter()
            .flat_map(|e| e.bursts.iter().map(|b| b.worker))
            .max()
            .unwrap_or(0);
        for w in 1..=max_worker {
            ev.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{w},\
                 \"args\":{{\"name\":\"worker {w}\"}}}}"
            ));
        }
        let slice = |name: &str, cat: &str, tid: u32, lo: f64, hi: f64, args: String| {
            format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":1,\
                 \"tid\":{tid},\"ts\":{lo},\"dur\":{},\"args\":{{{args}}}}}",
                (hi - lo).max(0.0)
            )
        };
        let counter = |name: &str, ts: f64, key: &str, value: f64| {
            format!(
                "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{ts},\
                 \"args\":{{\"{key}\":{value}}}}}"
            )
        };
        for (i, e) in self.epochs.iter().enumerate() {
            ev.push(counter(
                "elected shards",
                e.elect_start_us,
                "shards",
                e.bursts.len() as f64,
            ));
            ev.push(counter(
                "pending events",
                e.elect_start_us,
                "events",
                e.pending as f64,
            ));
            ev.push(slice(
                &format!("epoch {i}"),
                "epoch",
                0,
                e.elect_start_us,
                e.reattach_end_us,
                format!(
                    "\"pending\":{},\"offloaded\":{},\"threads_used\":{}",
                    e.pending, e.offloaded, e.threads_used
                ),
            ));
            ev.push(slice(
                "elect",
                "barrier",
                0,
                e.elect_start_us,
                e.elect_end_us,
                String::new(),
            ));
            for b in &e.bursts {
                ev.push(slice(
                    &format!("burst shard {}", b.shard),
                    "burst",
                    b.worker,
                    b.start_us,
                    b.end_us,
                    format!(
                        "\"events\":{},\"pending\":{},\"foreign_pushes\":{},\"stalled\":{}",
                        b.events, b.pending, b.foreign_pushes, b.stalled
                    ),
                ));
            }
            ev.push(slice(
                "merge",
                "barrier",
                0,
                e.merge_start_us,
                e.merge_end_us,
                String::new(),
            ));
            ev.push(slice(
                "reattach",
                "barrier",
                0,
                e.merge_end_us,
                e.reattach_end_us,
                String::new(),
            ));
            ev.push(counter("elected shards", e.reattach_end_us, "shards", 0.0));
        }
        for r in &self.runs {
            ev.push(counter("elected shards", r.elect_start_us, "shards", 1.0));
            ev.push(counter(
                "pending events",
                r.elect_start_us,
                "events",
                r.pending as f64,
            ));
            ev.push(slice(
                "elect",
                "barrier",
                0,
                r.elect_start_us,
                r.elect_end_us,
                String::new(),
            ));
            ev.push(slice(
                &format!("run shard {}", r.shard),
                "run",
                0,
                r.elect_end_us,
                r.end_us,
                format!(
                    "\"events\":{},\"pending\":{},\"stalled\":{}",
                    r.events, r.pending, r.stalled
                ),
            ));
            ev.push(counter("elected shards", r.end_us, "shards", 0.0));
        }
        ev
    }

    /// Decomposes the trace into the Amdahl-style report.
    pub fn analyze(&self) -> ExecReport {
        let wall = self.wall_secs.max(1e-12);
        let secs = |lo: f64, hi: f64| ((hi - lo) / 1e6).max(0.0);
        let elect_secs: f64 = self
            .epochs
            .iter()
            .map(|e| secs(e.elect_start_us, e.elect_end_us))
            .sum();
        let merge_secs: f64 = self
            .epochs
            .iter()
            .map(|e| secs(e.merge_start_us, e.merge_end_us))
            .sum();
        let reattach_secs: f64 = self
            .epochs
            .iter()
            .map(|e| secs(e.merge_end_us, e.reattach_end_us))
            .sum();
        let run_elect_secs: f64 = self
            .runs
            .iter()
            .map(|r| secs(r.elect_start_us, r.elect_end_us))
            .sum();
        let run_secs: f64 = self
            .runs
            .iter()
            .map(|r| secs(r.elect_end_us, r.end_us))
            .sum();
        let serial_secs = elect_secs + merge_secs + reattach_secs + run_elect_secs + run_secs;

        let mut burst_span_secs = 0.0;
        let mut burst_busy_secs = 0.0;
        let mut idle_secs = 0.0;
        let mut inline_span_secs = 0.0;
        let mut imb_num = 0.0;
        let mut imb_den = 0u64;
        let mut stalled = 0u64;
        let mut bursts = 0u64;
        let mut slack_sum = 0.0;
        let mut slack_n = 0u64;
        let mut foreign = 0u64;
        for e in &self.epochs {
            let span = e.burst_span_secs();
            let busy = e.burst_busy_secs();
            burst_span_secs += span;
            burst_busy_secs += busy;
            if e.offloaded {
                let slots = e.threads_used.max(1) as f64;
                idle_secs += (slots * span - busy).max(0.0);
            } else {
                inline_span_secs += span;
            }
            let events = e.events();
            imb_num += e.imbalance() * events as f64;
            imb_den += events;
            for b in &e.bursts {
                bursts += 1;
                stalled += b.stalled as u64;
                foreign += b.foreign_pushes;
                if let Some(s) = b.slack_secs {
                    slack_sum += s;
                    slack_n += 1;
                }
            }
        }
        let epoch_events: u64 = self.epochs.iter().map(EpochRecord::events).sum();
        let run_events: u64 = self.runs.iter().map(|r| r.events).sum();
        let total_events = epoch_events + run_events;

        // Wall-time attribution. Straggler waste is per-slot idle
        // converted back to coordinator-wall by dividing by the slots
        // that were waiting.
        let frac_serial = serial_secs / wall;
        let frac_imbalance = self
            .epochs
            .iter()
            .filter(|e| e.offloaded)
            .map(|e| {
                let slots = e.threads_used.max(1) as f64;
                (e.burst_span_secs() - e.burst_busy_secs() / slots).max(0.0)
            })
            .sum::<f64>()
            / wall;
        let frac_inline = inline_span_secs / wall;

        let imbalance_ratio = if imb_den == 0 {
            1.0
        } else {
            imb_num / imb_den as f64
        };
        let stalled_fraction = if bursts == 0 {
            0.0
        } else {
            stalled as f64 / bursts as f64
        };
        let mean_slack_secs = if slack_n == 0 {
            0.0
        } else {
            slack_sum / slack_n as f64
        };
        let foreign_per_kevent = if total_events == 0 {
            0.0
        } else {
            foreign as f64 * 1000.0 / total_events as f64
        };
        let inline_event_fraction = if epoch_events == 0 {
            0.0
        } else {
            self.epochs
                .iter()
                .filter(|e| !e.offloaded)
                .map(EpochRecord::events)
                .sum::<u64>() as f64
                / epoch_events as f64
        };
        let profiler_barrier_secs = self
            .profile
            .phases
            .iter()
            .find(|p| p.name == "barrier")
            .map_or(0.0, |p| p.secs);
        // The recorder's own barrier accounting: everything the
        // coordinator does outside event execution — epoch elect/merge/
        // re-attach plus the classic runs' election windows. This is
        // what the LoopProfiler charges to its `barrier` phase.
        let exec_barrier_secs = elect_secs + merge_secs + reattach_secs + run_elect_secs;

        let verdict = {
            let inline_note = inline_event_fraction > 0.5 && self.threads > 1;
            if frac_serial >= frac_imbalance && frac_serial >= frac_inline {
                let mut v = format!(
                    "serialization — coordinator-only work (elect/merge/re-attach \
                     + plane runs) consumes {:.1}% of wall, capping speedup at \
                     {:.2}x regardless of thread count",
                    frac_serial * 100.0,
                    1.0 / frac_serial.max(1e-9),
                );
                if stalled_fraction > 0.5 {
                    let _ = write!(
                        v,
                        "; tight horizons cut {:.0}% of bursts short (mean slack {:.3}s \
                         virtual), so each barrier buys little parallel work",
                        stalled_fraction * 100.0,
                        mean_slack_secs,
                    );
                }
                v
            } else if frac_imbalance >= frac_inline {
                format!(
                    "load imbalance — stragglers waste {:.1}% of wall \
                     (max/mean burst events {:.2})",
                    frac_imbalance * 100.0,
                    imbalance_ratio,
                )
            } else {
                format!(
                    "small-burst inline fallback — {:.1}% of wall ran single-threaded \
                     because pending events stayed below offload_min_events = {}{}",
                    frac_inline * 100.0,
                    self.offload_min_events,
                    if inline_note {
                        format!(
                            " ({:.0}% of epoch events never reached a worker thread)",
                            inline_event_fraction * 100.0
                        )
                    } else {
                        String::new()
                    },
                )
            }
        };

        ExecReport {
            wall_secs: self.wall_secs,
            shards: self.shards,
            threads: self.threads,
            epochs: self.epochs_run(),
            offloaded_epochs: self.epochs.iter().filter(|e| e.offloaded).count() as u64,
            classic_runs: self.runs.len() as u64,
            epoch_events,
            run_events,
            elect_secs,
            merge_secs,
            reattach_secs,
            run_elect_secs,
            run_secs,
            serial_secs,
            serialization_fraction: frac_serial,
            burst_span_secs,
            burst_busy_secs,
            worker_idle_secs: idle_secs,
            imbalance_fraction: frac_imbalance,
            inline_fraction: frac_inline,
            imbalance_ratio,
            stalled_burst_fraction: stalled_fraction,
            mean_slack_secs,
            foreign_per_kevent,
            inline_event_fraction,
            exec_barrier_secs,
            profiler_barrier_secs,
            verdict,
        }
    }
}

/// The analyzer's decomposition of an [`ExecTrace`]. All fractions are
/// of total recorder wall time unless noted.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecReport {
    /// Recorder wall time, seconds.
    pub wall_secs: f64,
    /// Configured shards.
    pub shards: u32,
    /// Configured threads.
    pub threads: u32,
    /// Parallel epochs executed.
    pub epochs: u64,
    /// Epochs whose bursts were dispatched to worker threads.
    pub offloaded_epochs: u64,
    /// Classic (plane/fallback) runs executed.
    pub classic_runs: u64,
    /// Events processed inside epochs.
    pub epoch_events: u64,
    /// Events processed by classic runs.
    pub run_events: u64,
    /// Coordinator wall in epoch elections, seconds.
    pub elect_secs: f64,
    /// Coordinator wall in epoch merges, seconds.
    pub merge_secs: f64,
    /// Coordinator wall in epoch re-attach/summaries, seconds.
    pub reattach_secs: f64,
    /// Coordinator wall in classic-run elections, seconds.
    pub run_elect_secs: f64,
    /// Coordinator wall draining classic runs, seconds.
    pub run_secs: f64,
    /// Total coordinator-only (serialized) wall, seconds.
    pub serial_secs: f64,
    /// `serial_secs / wall_secs` — the Amdahl serial fraction.
    pub serialization_fraction: f64,
    /// Sum of per-epoch burst-phase windows, seconds.
    pub burst_span_secs: f64,
    /// Sum of individual burst durations, seconds.
    pub burst_busy_secs: f64,
    /// Slot-seconds workers spent idle inside offloaded epochs.
    pub worker_idle_secs: f64,
    /// Wall fraction lost to stragglers in offloaded epochs.
    pub imbalance_fraction: f64,
    /// Wall fraction spent in inline (non-offloaded) burst phases.
    pub inline_fraction: f64,
    /// Events-weighted mean of per-epoch max/mean burst events.
    pub imbalance_ratio: f64,
    /// Fraction of bursts that stalled at the epoch horizon.
    pub stalled_burst_fraction: f64,
    /// Mean virtual-time horizon slack at election, seconds.
    pub mean_slack_secs: f64,
    /// Foreign pushes buffered per thousand events.
    pub foreign_per_kevent: f64,
    /// Fraction of epoch events processed by inline epochs.
    pub inline_event_fraction: f64,
    /// The recorder's own barrier accounting (elect + merge + re-attach
    /// + classic elections), seconds — compare `profiler_barrier_secs`.
    pub exec_barrier_secs: f64,
    /// The merged `LoopProfiler` barrier phase, seconds.
    pub profiler_barrier_secs: f64,
    /// The one-line bottleneck verdict.
    pub verdict: String,
}

impl ExecReport {
    /// Renders the report as the text `sctsim exec` prints.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# Execution-plane analysis");
        let _ = writeln!(
            s,
            "trace: {} shards x {} threads; {} epochs ({} offloaded), {} classic runs; \
             {} epoch events + {} run events over {:.3} s wall",
            self.shards,
            self.threads,
            self.epochs,
            self.offloaded_epochs,
            self.classic_runs,
            self.epoch_events,
            self.run_events,
            self.wall_secs,
        );
        let _ = writeln!(s);
        let _ = writeln!(s, "## Amdahl decomposition (fractions of wall)");
        let _ = writeln!(
            s,
            "serialized coordinator work   {:>7.3} s  ({:.1}%)",
            self.serial_secs,
            self.serialization_fraction * 100.0
        );
        let _ = writeln!(
            s,
            "  epoch elect / merge / re-attach   {:.3} / {:.3} / {:.3} s",
            self.elect_secs, self.merge_secs, self.reattach_secs
        );
        let _ = writeln!(
            s,
            "  classic runs (elect + drain)      {:.3} + {:.3} s",
            self.run_elect_secs, self.run_secs
        );
        let _ = writeln!(
            s,
            "parallel burst phases         {:>7.3} s span, {:.3} s busy, \
             {:.3} slot-s idle",
            self.burst_span_secs, self.burst_busy_secs, self.worker_idle_secs
        );
        let _ = writeln!(
            s,
            "load-imbalance ratio          {:>7.2}  (max/mean burst events, \
             events-weighted)",
            self.imbalance_ratio
        );
        let _ = writeln!(
            s,
            "Amdahl ceiling                {:>7.2}x  (1 / serial fraction)",
            1.0 / self.serialization_fraction.max(1e-9)
        );
        let _ = writeln!(s);
        let _ = writeln!(s, "## Stall attribution");
        let _ = writeln!(
            s,
            "tight horizons            {:.1}% of bursts stalled at the epoch horizon \
             (mean slack {:.4} s virtual)",
            self.stalled_burst_fraction * 100.0,
            self.mean_slack_secs
        );
        let _ = writeln!(
            s,
            "foreign-push buffering    {:.2} pushes per 1k events",
            self.foreign_per_kevent
        );
        let _ = writeln!(
            s,
            "small-burst inline path   {:.1}% of wall, {:.1}% of epoch events",
            self.inline_fraction * 100.0,
            self.inline_event_fraction * 100.0
        );
        let _ = writeln!(s);
        let _ = writeln!(s, "## Reconciliation");
        let pct = if self.profiler_barrier_secs > 0.0 {
            (self.exec_barrier_secs - self.profiler_barrier_secs) / self.profiler_barrier_secs
                * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            s,
            "recorder barrier {:.3} s vs LoopProfiler barrier phase {:.3} s ({:+.1}%)",
            self.exec_barrier_secs, self.profiler_barrier_secs, pct
        );
        let _ = writeln!(s);
        let _ = writeln!(s, "## Verdict");
        let _ = writeln!(s, "bottleneck: {}", self.verdict);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::ProfilePhase;

    fn profile(barrier_secs: f64) -> ProfileSnapshot {
        ProfileSnapshot {
            wall_secs: 1.0,
            events: 1000,
            events_per_sec: 1000.0,
            phases: vec![ProfilePhase {
                name: "barrier".to_string(),
                secs: barrier_secs,
                calls: 10,
            }],
        }
    }

    fn burst(shard: u32, worker: u32, lo: f64, hi: f64, events: u64) -> BurstRecord {
        BurstRecord {
            shard,
            worker,
            start_us: lo,
            end_us: hi,
            events,
            pending: events,
            foreign_pushes: 0,
            slack_secs: Some(0.5),
            stalled: true,
        }
    }

    fn sample_trace() -> ExecTrace {
        ExecTrace {
            version: 1,
            shards: 4,
            threads: 2,
            offload_min_events: 256,
            wall_secs: 0.001,
            epochs: vec![
                EpochRecord {
                    elect_start_us: 0.0,
                    elect_end_us: 100.0,
                    merge_start_us: 400.0,
                    merge_end_us: 500.0,
                    reattach_end_us: 520.0,
                    pending: 30,
                    offloaded: true,
                    threads_used: 2,
                    bursts: vec![burst(1, 0, 100.0, 400.0, 20), burst(2, 1, 110.0, 200.0, 10)],
                },
                EpochRecord {
                    elect_start_us: 600.0,
                    elect_end_us: 610.0,
                    merge_start_us: 650.0,
                    merge_end_us: 660.0,
                    reattach_end_us: 665.0,
                    pending: 4,
                    offloaded: false,
                    threads_used: 1,
                    bursts: vec![burst(1, 0, 610.0, 650.0, 4)],
                },
            ],
            runs: vec![RunRecord {
                shard: 0,
                elect_start_us: 700.0,
                elect_end_us: 710.0,
                end_us: 900.0,
                events: 50,
                pending: 50,
                slack_secs: None,
                stalled: false,
            }],
            profile: profile(0.00024),
        }
    }

    #[test]
    fn trace_round_trips_through_the_combined_json() {
        let trace = sample_trace();
        let text = trace.to_json();
        assert!(text.contains("\"traceEvents\""), "{text}");
        assert!(text.contains("\"exec\""), "{text}");
        let back = ExecTrace::from_json(&text).unwrap();
        assert_eq!(back, trace);
        // A bare object (no traceEvents wrapper) also parses.
        let bare = serde_json::to_string(&trace).unwrap();
        assert_eq!(ExecTrace::from_json(&bare).unwrap(), trace);
        assert!(ExecTrace::from_json("[1,2]").is_err());
        assert!(ExecTrace::from_json("{nope").is_err());
    }

    #[test]
    fn perfetto_events_cover_workers_barriers_and_counters() {
        let trace = sample_trace();
        let events = trace.perfetto_events();
        let text = events.join("\n");
        assert!(text.contains("\"name\":\"worker 1\""), "{text}");
        assert!(text.contains("\"name\":\"coordinator\""), "{text}");
        assert!(text.contains(
            "\"name\":\"burst shard 2\",\"cat\":\"burst\",\"ph\":\"X\",\"pid\":1,\"tid\":1"
        ));
        assert!(text.contains("\"name\":\"elect\",\"cat\":\"barrier\""));
        assert!(text.contains("\"name\":\"merge\",\"cat\":\"barrier\""));
        assert!(text.contains("\"name\":\"elected shards\",\"ph\":\"C\""));
        assert!(text.contains("\"name\":\"pending events\",\"ph\":\"C\""));
        assert!(text.contains("\"name\":\"run shard 0\",\"cat\":\"run\""));
    }

    #[test]
    fn analyzer_decomposes_and_reconciles() {
        let report = sample_trace().analyze();
        assert_eq!(report.epochs, 2);
        assert_eq!(report.offloaded_epochs, 1);
        assert_eq!(report.classic_runs, 1);
        assert_eq!(report.epoch_events, 34);
        assert_eq!(report.run_events, 50);
        // Serial: elect 100+10, merge 100+10, reattach 20+5, run elect
        // 10, run drain 190 → 445 us.
        assert!(
            (report.serial_secs - 445e-6).abs() < 1e-12,
            "{}",
            report.serial_secs
        );
        // Imbalance of the offloaded epoch: max 20 of mean 15 → 4/3,
        // weighted with the inline epoch's 1.0 on 4 events.
        let expect = (20.0 * 2.0 / 30.0 * 30.0 + 1.0 * 4.0) / 34.0;
        assert!((report.imbalance_ratio - expect).abs() < 1e-12);
        assert!(report.stalled_burst_fraction > 0.99);
        // exec barrier = serial minus the classic drain: 255 us.
        assert!((report.exec_barrier_secs - 255e-6).abs() < 1e-12);
        assert!((report.profiler_barrier_secs - 0.00024).abs() < 1e-15);
        let text = report.to_text();
        assert!(text.contains("## Amdahl decomposition"), "{text}");
        assert!(text.contains("## Stall attribution"), "{text}");
        assert!(text.contains("bottleneck: "), "{text}");
        assert!(text.contains("LoopProfiler barrier phase"), "{text}");
    }

    #[test]
    fn verdict_names_serialization_when_the_coordinator_dominates() {
        let report = sample_trace().analyze();
        // 445 us serialized of 1000 us wall dominates everything else.
        assert!(
            report.verdict.starts_with("serialization"),
            "{}",
            report.verdict
        );
        assert!(
            report.verdict.contains("tight horizons"),
            "{}",
            report.verdict
        );
    }

    #[test]
    fn verdict_names_imbalance_when_stragglers_dominate() {
        let mut trace = sample_trace();
        trace.wall_secs = 0.0006;
        trace.epochs[0].elect_end_us = 5.0;
        trace.epochs[0].merge_start_us = 500.0;
        trace.epochs[0].merge_end_us = 505.0;
        trace.epochs[0].reattach_end_us = 506.0;
        trace.epochs[0].bursts = vec![burst(1, 0, 5.0, 500.0, 100), burst(2, 1, 5.0, 50.0, 10)];
        trace.epochs.truncate(1);
        trace.runs.clear();
        let report = trace.analyze();
        assert!(
            report.verdict.starts_with("load imbalance"),
            "{}",
            report.verdict
        );
    }

    #[test]
    fn verdict_names_inline_fallback_when_nothing_offloads() {
        let mut trace = sample_trace();
        trace.wall_secs = 0.0005;
        for e in &mut trace.epochs {
            e.offloaded = false;
            e.threads_used = 1;
        }
        trace.epochs[0].bursts.iter_mut().for_each(|b| b.worker = 0);
        // Shrink the coordinator windows so the inline burst span wins.
        trace.epochs[0].elect_end_us = 2.0;
        trace.epochs[0].merge_start_us = 400.0;
        trace.epochs[0].merge_end_us = 402.0;
        trace.epochs[0].reattach_end_us = 403.0;
        trace.runs.clear();
        let report = trace.analyze();
        assert!(
            report.verdict.starts_with("small-burst inline fallback"),
            "{}",
            report.verdict
        );
    }
}
