//! Serialisable telemetry snapshots and their report renderers.
//!
//! A [`MetricsSnapshot`] is the wire form of the core's metrics registry
//! (`sct-core::metrics`): named counters, time-weighted gauges, and
//! log-bucketed histograms, flattened into plain vectors so the schema
//! stays stable and self-describing. This crate sits *below* sct-core, so
//! the snapshot carries everything a report needs — quantiles are
//! precomputed by the exporter, bucket keys are opaque integers.
//!
//! Renderers: [`MetricsSnapshot::to_markdown`] produces the three metric
//! tables; [`MetricsSnapshot::to_svg`] charts the per-server utilization
//! distribution via the [`crate::svg`] module.

use crate::report::Table;
use crate::series::Series;
use crate::svg::{render_series, SvgOptions};
use sct_simcore::Summary;
use serde::{Deserialize, Serialize};

/// One named monotone counter.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name, e.g. `admitted_direct`.
    pub name: String,
    /// Final count.
    pub value: u64,
}

/// One time-weighted gauge: an exact integral of a piecewise-linear
/// quantity over the measurement window.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name, e.g. `cluster_utilization` or `server_utilization/3`.
    pub name: String,
    /// Time-weighted mean (`integral / span_secs`).
    pub mean: f64,
    /// Smallest value the gauge took inside the window.
    pub min: f64,
    /// Largest value the gauge took inside the window.
    pub max: f64,
    /// `∫ value dt` over the window (value-seconds).
    pub integral: f64,
    /// Total measured seconds (summed across merged trials).
    pub span_secs: f64,
}

/// One histogram bucket: `key` encodes the deterministic log-scale bucket
/// (octave × 8 + sub-octave), `count` the samples that landed in it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketSnapshot {
    /// Bucket key; buckets merge across trials by key.
    pub key: i64,
    /// Samples in the bucket.
    pub count: u64,
}

/// One streaming histogram with precomputed quantiles.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name, e.g. `waitlist_wait_secs`.
    pub name: String,
    /// Total recorded samples (including non-positive ones).
    pub count: u64,
    /// Samples ≤ 0, kept outside the log buckets.
    pub nonpositive: u64,
    /// Sum of all samples (mean = `sum / count`).
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Median estimate.
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// The non-empty log buckets, in key order.
    pub buckets: Vec<BucketSnapshot>,
}

impl HistogramSnapshot {
    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One timed phase of the event loop's self-profile.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfilePhase {
    /// Phase name (`dispatch`, `alloc`, `wake`, `probe`, `barrier`).
    pub name: String,
    /// Wall seconds attributed to the phase.
    pub secs: f64,
    /// Timed intervals folded into `secs`.
    pub calls: u64,
}

/// Wire form of one `LoopProfile` (the core's event-loop self-profile).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileSnapshot {
    /// Total wall seconds inside the loop.
    pub wall_secs: f64,
    /// Events dispatched.
    pub events: u64,
    /// Throughput (`events / wall_secs`).
    pub events_per_sec: f64,
    /// The timed phases, in canonical order.
    pub phases: Vec<ProfilePhase>,
}

/// Loop self-profiles attached to a metrics export: the cross-shard
/// merge plus the per-shard breakdown (only populated when `shards > 1`;
/// the monolithic loop has exactly one profile, already the merge).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoopProfilesSnapshot {
    /// All shards merged: phase seconds summed, wall = max across shards.
    pub merged: ProfileSnapshot,
    /// One profile per shard, in shard order (empty when `shards = 1`).
    pub per_shard: Vec<ProfileSnapshot>,
}

/// A complete exported telemetry snapshot: one trial, or several trials
/// merged exactly (counters add, buckets add keywise, gauge integrals and
/// spans add).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// How many trials were merged into this snapshot.
    pub trials: u32,
    /// Per-trial measurement window length, seconds.
    pub measured_secs: f64,
    /// Named counters, in name order.
    pub counters: Vec<CounterSnapshot>,
    /// Named gauges, in name order.
    pub gauges: Vec<GaugeSnapshot>,
    /// Named histograms, in name order.
    pub histograms: Vec<HistogramSnapshot>,
    /// Event-loop self-profiles (merged + per-shard), when the exporter
    /// captured them. Serialised as `null` otherwise.
    pub profile: Option<LoopProfilesSnapshot>,
}

impl MetricsSnapshot {
    /// Parses a snapshot from its JSON export.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid metrics snapshot: {e}"))
    }

    /// Serialises the snapshot as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialises")
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<&GaugeSnapshot> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the snapshot as three markdown tables (counters, gauges,
    /// histograms), preceded by a one-line header.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "# Metrics snapshot ({} trial{}, {:.0} measured seconds each)\n\n",
            self.trials,
            if self.trials == 1 { "" } else { "s" },
            self.measured_secs
        );
        if !self.counters.is_empty() {
            let mut t = Table::new(vec!["counter", "value"]);
            for c in &self.counters {
                t.push_row(vec![c.name.clone(), c.value.to_string()]);
            }
            out.push_str("## Counters\n\n");
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        if !self.gauges.is_empty() {
            let mut t = Table::new(vec!["gauge", "mean", "min", "max", "span (s)"]);
            for g in &self.gauges {
                t.push_row(vec![
                    g.name.clone(),
                    format!("{:.4}", g.mean),
                    format!("{:.4}", g.min),
                    format!("{:.4}", g.max),
                    format!("{:.0}", g.span_secs),
                ]);
            }
            out.push_str("## Time-weighted gauges\n\n");
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        if !self.histograms.is_empty() {
            let mut t = Table::new(vec![
                "histogram",
                "count",
                "mean",
                "p50",
                "p90",
                "p99",
                "min",
                "max",
            ]);
            for h in &self.histograms {
                t.push_row(vec![
                    h.name.clone(),
                    h.count.to_string(),
                    format!("{:.4}", h.mean()),
                    format!("{:.4}", h.p50),
                    format!("{:.4}", h.p90),
                    format!("{:.4}", h.p99),
                    format!("{:.4}", h.min),
                    format!("{:.4}", h.max),
                ]);
            }
            out.push_str("## Histograms\n\n");
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        if let Some(profile) = &self.profile {
            out.push_str("## Loop profile\n\n");
            let mut t = Table::new(vec!["profile", "wall (s)", "events", "events/s"]);
            let mut rows: Vec<(String, &ProfileSnapshot)> =
                vec![("merged".to_string(), &profile.merged)];
            for (i, p) in profile.per_shard.iter().enumerate() {
                rows.push((format!("shard {i}"), p));
            }
            for (label, p) in &rows {
                t.push_row(vec![
                    label.clone(),
                    format!("{:.4}", p.wall_secs),
                    p.events.to_string(),
                    format!("{:.0}", p.events_per_sec),
                ]);
            }
            out.push_str(&t.to_markdown());
            out.push('\n');
            let mut t = Table::new(vec!["phase (s)", "merged"]);
            for i in 0..profile.per_shard.len() {
                // Table wants String columns; build headers dynamically.
                t.headers.push(format!("shard {i}"));
            }
            for (pi, phase) in profile.merged.phases.iter().enumerate() {
                let mut row = vec![phase.name.clone(), format!("{:.4}", phase.secs)];
                for p in &profile.per_shard {
                    row.push(format!("{:.4}", p.phases[pi].secs));
                }
                t.push_row(row);
            }
            out.push_str(&t.to_markdown());
            out.push('\n');
            if !profile.per_shard.is_empty() {
                out.push_str(
                    "Phase seconds sum across shards; wall time is the max across \
                     shards (they multiplex one thread), so merged wall is not the \
                     per-shard total.\n\n",
                );
            }
        }
        out
    }

    /// Renders the per-server dashboard chart: mean utilization and mean
    /// committed share per server, from the `server_utilization/<i>` and
    /// `server_committed_share/<i>` gauge families. Returns `Err` when the
    /// snapshot carries no per-server utilization gauges.
    pub fn to_svg(&self) -> Result<String, String> {
        let util = self.gauge_family("server_utilization/");
        if util.is_empty() {
            return Err("snapshot has no server_utilization/<i> gauges".to_string());
        }
        let committed = self.gauge_family("server_committed_share/");
        let x: Vec<f64> = (0..util.len()).map(|i| i as f64).collect();
        let mut series = Series::new(
            "Per-server utilization (time-weighted means)",
            "server",
            "share of capacity",
            x,
        );
        series.push_curve(
            "utilization",
            util.iter().map(|g| Summary::of(&[g.mean])).collect(),
        );
        if committed.len() == util.len() {
            series.push_curve(
                "committed share",
                committed.iter().map(|g| Summary::of(&[g.mean])).collect(),
            );
        }
        Ok(render_series(
            &series,
            &SvgOptions {
                y_range: Some((0.0, 1.0)),
                ..SvgOptions::default()
            },
        ))
    }

    /// The gauges whose names start with `prefix` followed by an index,
    /// sorted by that index.
    fn gauge_family(&self, prefix: &str) -> Vec<&GaugeSnapshot> {
        let mut fam: Vec<(usize, &GaugeSnapshot)> = self
            .gauges
            .iter()
            .filter_map(|g| {
                let idx: usize = g.name.strip_prefix(prefix)?.parse().ok()?;
                Some((idx, g))
            })
            .collect();
        fam.sort_by_key(|&(idx, _)| idx);
        fam.into_iter().map(|(_, g)| g).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            trials: 2,
            measured_secs: 9000.0,
            counters: vec![
                CounterSnapshot {
                    name: "admitted_direct".into(),
                    value: 120,
                },
                CounterSnapshot {
                    name: "rejected".into(),
                    value: 7,
                },
            ],
            gauges: vec![
                GaugeSnapshot {
                    name: "server_utilization/0".into(),
                    mean: 0.91,
                    min: 0.2,
                    max: 1.0,
                    integral: 16380.0,
                    span_secs: 18000.0,
                },
                GaugeSnapshot {
                    name: "server_utilization/1".into(),
                    mean: 0.88,
                    min: 0.1,
                    max: 1.0,
                    integral: 15840.0,
                    span_secs: 18000.0,
                },
                GaugeSnapshot {
                    name: "server_committed_share/0".into(),
                    mean: 0.8,
                    min: 0.0,
                    max: 1.0,
                    integral: 14400.0,
                    span_secs: 18000.0,
                },
                GaugeSnapshot {
                    name: "server_committed_share/1".into(),
                    mean: 0.75,
                    min: 0.0,
                    max: 1.0,
                    integral: 13500.0,
                    span_secs: 18000.0,
                },
            ],
            histograms: vec![HistogramSnapshot {
                name: "waitlist_wait_secs".into(),
                count: 5,
                nonpositive: 0,
                sum: 61.0,
                min: 2.0,
                max: 30.0,
                p50: 9.0,
                p90: 28.0,
                p99: 30.0,
                buckets: vec![
                    BucketSnapshot { key: 8, count: 2 },
                    BucketSnapshot { key: 26, count: 3 },
                ],
            }],
            profile: None,
        }
    }

    fn sample_profile() -> LoopProfilesSnapshot {
        let phases = |scale: f64| {
            ["dispatch", "alloc", "wake", "probe", "barrier"]
                .iter()
                .enumerate()
                .map(|(i, name)| ProfilePhase {
                    name: (*name).to_string(),
                    secs: scale * (i + 1) as f64,
                    calls: 10 * (i as u64 + 1),
                })
                .collect()
        };
        LoopProfilesSnapshot {
            merged: ProfileSnapshot {
                wall_secs: 2.0,
                events: 1000,
                events_per_sec: 500.0,
                phases: phases(0.2),
            },
            per_shard: vec![
                ProfileSnapshot {
                    wall_secs: 2.0,
                    events: 600,
                    events_per_sec: 300.0,
                    phases: phases(0.12),
                },
                ProfileSnapshot {
                    wall_secs: 1.5,
                    events: 400,
                    events_per_sec: 267.0,
                    phases: phases(0.08),
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = sample();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn bad_json_names_the_problem() {
        let err = MetricsSnapshot::from_json("{not json").unwrap_err();
        assert!(err.contains("invalid metrics snapshot"), "{err}");
    }

    #[test]
    fn lookups_find_metrics_by_name() {
        let snap = sample();
        assert_eq!(snap.counter("rejected"), Some(7));
        assert!(snap.counter("nope").is_none());
        assert_eq!(snap.gauge("server_utilization/1").unwrap().mean, 0.88);
        let h = snap.histogram("waitlist_wait_secs").unwrap();
        assert_eq!(h.count, 5);
        assert!((h.mean() - 12.2).abs() < 1e-12);
    }

    #[test]
    fn markdown_has_all_three_tables() {
        let md = sample().to_markdown();
        assert!(md.contains("## Counters"));
        assert!(md.contains("## Time-weighted gauges"));
        assert!(md.contains("## Histograms"));
        assert!(md.contains("| admitted_direct | 120 |"));
        assert!(md.contains("waitlist_wait_secs"));
        assert!(md.contains("2 trials"));
        assert!(
            !md.contains("## Loop profile"),
            "no profile section without profiles"
        );
    }

    #[test]
    fn markdown_profile_section_lists_merged_and_per_shard() {
        let mut snap = sample();
        snap.profile = Some(sample_profile());
        let md = snap.to_markdown();
        assert!(md.contains("## Loop profile"));
        assert!(md.contains("| merged |"));
        assert!(md.contains("| shard 0 |"));
        assert!(md.contains("| shard 1 |"));
        assert!(md.contains("| barrier |"));
        assert!(
            md.contains("wall time is the max across"),
            "merged-vs-per-shard wall note missing:\n{md}"
        );
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap, "profile must survive the JSON round trip");
    }

    #[test]
    fn markdown_profile_section_without_shards_omits_the_wall_note() {
        let mut snap = sample();
        let mut profile = sample_profile();
        profile.per_shard.clear();
        snap.profile = Some(profile);
        let md = snap.to_markdown();
        assert!(md.contains("## Loop profile"));
        assert!(!md.contains("| shard 0 |"));
        assert!(!md.contains("wall time is the max across"));
    }

    #[test]
    fn svg_dashboard_charts_the_server_families() {
        let svg = sample().to_svg().unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("utilization"));
        assert!(svg.contains("committed share"));
        assert_eq!(svg.matches("<polyline").count(), 2);
    }

    #[test]
    fn svg_requires_per_server_gauges() {
        let mut snap = sample();
        snap.gauges.clear();
        assert!(snap.to_svg().unwrap_err().contains("server_utilization"));
    }
}
