//! Experiment results as plottable series.
//!
//! Every figure in the paper is a family of curves over a common x axis
//! (usually Zipf θ). A [`Series`] captures exactly that: the x values plus
//! named [`Curve`]s of per-point trial [`Summary`]s. The figure harness
//! serialises these to JSON and renders them as markdown via
//! [`crate::report`].

use sct_simcore::Summary;
use serde::{Deserialize, Serialize};

/// One named curve: a y-summary per x position.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Curve {
    /// Legend label ("no migration", "20% buffer", "P4", …).
    pub label: String,
    /// One summary per x value, same length as the series' `x`.
    pub points: Vec<Summary>,
}

impl Curve {
    /// Mean values of all points.
    pub fn means(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.mean).collect()
    }
}

/// A family of curves over a shared x axis.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// What the series shows (figure id, metric, system).
    pub title: String,
    /// Name of the x axis ("zipf theta", "staging fraction", "SVBR", …).
    pub x_label: String,
    /// Name of the y axis (usually "utilization").
    pub y_label: String,
    /// The x positions.
    pub x: Vec<f64>,
    /// The curves.
    pub curves: Vec<Curve>,
}

impl Series {
    /// Creates an empty series over the given axis.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        x: Vec<f64>,
    ) -> Self {
        Series {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x,
            curves: Vec::new(),
        }
    }

    /// Adds a curve; its length must match the x axis.
    pub fn push_curve(&mut self, label: impl Into<String>, points: Vec<Summary>) {
        assert_eq!(points.len(), self.x.len(), "curve length must match x axis");
        self.curves.push(Curve {
            label: label.into(),
            points,
        });
    }

    /// Finds a curve by label.
    pub fn curve(&self, label: &str) -> Option<&Curve> {
        self.curves.iter().find(|c| c.label == label)
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("series serialisation cannot fail")
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<Series, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Renders a markdown table: one row per x, one column per curve
    /// (mean ± 95 % CI when more than one trial).
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let mut header = format!("| {} |", self.x_label);
        let mut rule = String::from("|---|");
        for c in &self.curves {
            header.push_str(&format!(" {} |", c.label));
            rule.push_str("---|");
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        for (i, &x) in self.x.iter().enumerate() {
            let mut row = format!("| {x:.3} |");
            for c in &self.curves {
                let p = &c.points[i];
                if p.n > 1 {
                    row.push_str(&format!(" {:.4} ± {:.4} |", p.mean, p.ci95));
                } else {
                    row.push_str(&format!(" {:.4} |", p.mean));
                }
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(mean: f64) -> Summary {
        Summary {
            n: 3,
            mean,
            std_dev: 0.01,
            ci95: 0.011,
            min: mean - 0.01,
            max: mean + 0.01,
        }
    }

    fn sample() -> Series {
        let mut s = Series::new(
            "fig4 small",
            "zipf theta",
            "utilization",
            vec![0.0, 0.5, 1.0],
        );
        s.push_curve(
            "no migration",
            vec![summary(0.8), summary(0.85), summary(0.9)],
        );
        s.push_curve("hops=1", vec![summary(0.9), summary(0.95), summary(0.97)]);
        s
    }

    #[test]
    fn json_round_trip() {
        let s = sample();
        let back = Series::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn curve_lookup_and_means() {
        let s = sample();
        let c = s.curve("hops=1").unwrap();
        assert_eq!(c.means(), vec![0.9, 0.95, 0.97]);
        assert!(s.curve("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "curve length must match")]
    fn mismatched_curve_rejected() {
        let mut s = sample();
        s.push_curve("bad", vec![summary(1.0)]);
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = sample().to_markdown();
        assert!(md.contains("### fig4 small"));
        assert!(md.contains("| zipf theta | no migration | hops=1 |"));
        assert!(md.contains("0.9500"));
        assert!(md.contains("±"));
        assert_eq!(md.lines().filter(|l| l.starts_with('|')).count(), 5);
    }
}
