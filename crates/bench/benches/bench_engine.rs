//! Microbenchmarks of the hot path: EFTF allocation and the per-server
//! engine event cycle. These bound the simulator's events/second and, by
//! extension, how cheaply the paper's 5 × 1000 h protocol reruns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sct_cluster::ServerId;
use sct_media::{ClientProfile, VideoId};
use sct_simcore::{Rng, SimTime};
use sct_transmission::{allocate, SchedulerKind, ServerEngine, Stream, StreamId};
use std::hint::black_box;

fn mk_streams(n: usize, rng: &mut Rng) -> Vec<Stream> {
    let mut streams: Vec<Stream> = (0..n)
        .map(|i| {
            let size = rng.range_f64(600.0, 5400.0);
            Stream::new(
                StreamId(i as u64),
                VideoId(i as u32),
                size,
                3.0,
                ClientProfile::new(720.0, 30.0),
                SimTime::ZERO,
            )
        })
        .collect();
    // Grant the base rate, then advance each stream a random amount so
    // projected finishes differ (as they would mid-simulation).
    allocate(
        SchedulerKind::NoWorkahead,
        n as f64 * 3.0,
        SimTime::ZERO,
        &mut streams,
    );
    for s in &mut streams {
        s.advance_to(SimTime::from_secs(rng.range_f64(0.0, 100.0)));
    }
    streams
}

fn bench_allocate(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocate");
    for &n in &[10usize, 33, 100, 330] {
        let mut rng = Rng::new(n as u64);
        let streams = mk_streams(n, &mut rng);
        let capacity = n as f64 * 3.0 + 60.0; // some spare to distribute
        for kind in [SchedulerKind::Eftf, SchedulerKind::ProportionalShare] {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &streams, |b, streams| {
                b.iter_batched(
                    || streams.clone(),
                    |mut s| allocate(kind, capacity, SimTime::from_secs(100.0), black_box(&mut s)),
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

fn bench_engine_cycle(c: &mut Criterion) {
    // Admit a full server's worth of streams and run the engine to empty —
    // the complete per-stream lifecycle (admit, buffer-full, completion).
    let mut group = c.benchmark_group("engine_drain");
    for &slots in &[33usize, 100] {
        group.bench_with_input(BenchmarkId::new("slots", slots), &slots, |b, &slots| {
            b.iter(|| {
                let mut engine =
                    ServerEngine::new(ServerId(0), slots as f64 * 3.0, SchedulerKind::Eftf);
                let mut rng = Rng::new(7);
                let t0 = SimTime::ZERO;
                for i in 0..slots {
                    let size = rng.range_f64(600.0, 5400.0);
                    engine.admit(
                        Stream::new(
                            StreamId(i as u64),
                            VideoId(i as u32),
                            size,
                            3.0,
                            ClientProfile::new(720.0, 30.0),
                            t0,
                        ),
                        t0,
                    );
                }
                let mut clock = t0;
                while let Some((when, _)) = engine.next_event_after(clock) {
                    engine.advance_to(when);
                    engine.reap_finished(when);
                    engine.reschedule(when);
                    clock = when;
                }
                black_box(engine.transmitted_mb())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allocate, bench_engine_cycle);
criterion_main!(benches);
