//! Whole-trial throughput: how fast one simulated hour runs on each paper
//! system. This is the number that decides whether the `--paper` protocol
//! (5 × 1000 h per data point) is an overnight job or a coffee break.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sct_core::config::SimConfig;
use sct_core::policies::Policy;
use sct_core::simulation::Simulation;
use sct_workload::SystemSpec;
use std::hint::black_box;

fn bench_trials(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_2h");
    group.sample_size(10);
    let systems = [
        ("tiny", SystemSpec::tiny_test()),
        ("small", SystemSpec::small_paper()),
        ("large", SystemSpec::large_paper()),
    ];
    for (name, spec) in systems {
        let cfg = SimConfig::builder(spec)
            .policy(Policy::P4)
            .theta(0.271)
            .duration_hours(2.0)
            .warmup_hours(0.0)
            .seed(1)
            .build();
        group.bench_with_input(BenchmarkId::new("P4", name), &cfg, |b, cfg| {
            b.iter(|| black_box(Simulation::run(cfg)))
        });
    }
    group.finish();
}

fn bench_policy_cost(c: &mut Criterion) {
    // P1 (no staging, no migration) versus P8 (everything on): how much
    // simulation time the mechanisms themselves cost.
    let mut group = c.benchmark_group("policy_overhead_small_2h");
    group.sample_size(10);
    for policy in [Policy::P1, Policy::P4, Policy::P8] {
        let cfg = SimConfig::builder(SystemSpec::small_paper())
            .policy(policy)
            .duration_hours(2.0)
            .warmup_hours(0.0)
            .seed(2)
            .build();
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &cfg,
            |b, cfg| b.iter(|| black_box(Simulation::run(cfg))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_trials, bench_policy_cost);
criterion_main!(benches);
