//! Whole-trial throughput: how fast one simulated hour runs on each paper
//! system. This is the number that decides whether the `--paper` protocol
//! (5 × 1000 h per data point) is an overnight job or a coffee break.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sct_core::config::SimConfig;
use sct_core::events::{JsonlTraceProbe, Probe, SimEvent};
use sct_core::metrics::TelemetryProbe;
use sct_core::policies::Policy;
use sct_core::simulation::Simulation;
use sct_core::SpanProbe;
use sct_simcore::SimTime;
use sct_workload::SystemSpec;
use std::hint::black_box;

fn bench_trials(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_2h");
    group.sample_size(10);
    let systems = [
        ("tiny", SystemSpec::tiny_test()),
        ("small", SystemSpec::small_paper()),
        ("large", SystemSpec::large_paper()),
    ];
    for (name, spec) in systems {
        let cfg = SimConfig::builder(spec)
            .policy(Policy::P4)
            .theta(0.271)
            .duration_hours(2.0)
            .warmup_hours(0.0)
            .seed(1)
            .build();
        group.bench_with_input(BenchmarkId::new("P4", name), &cfg, |b, cfg| {
            b.iter(|| black_box(Simulation::run(cfg)))
        });
    }
    group.finish();
}

fn bench_policy_cost(c: &mut Criterion) {
    // P1 (no staging, no migration) versus P8 (everything on): how much
    // simulation time the mechanisms themselves cost.
    let mut group = c.benchmark_group("policy_overhead_small_2h");
    group.sample_size(10);
    for policy in [Policy::P1, Policy::P4, Policy::P8] {
        let cfg = SimConfig::builder(SystemSpec::small_paper())
            .policy(policy)
            .duration_hours(2.0)
            .warmup_hours(0.0)
            .seed(2)
            .build();
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &cfg,
            |b, cfg| b.iter(|| black_box(Simulation::run(cfg))),
        );
    }
    group.finish();
}

fn bench_probe_overhead(c: &mut Criterion) {
    // The event-sourced core narrates every occurrence to its probes. The
    // built-in metrics probe is always attached, so `bare` is the
    // baseline; `counting` adds a trivial extra observer (dispatch cost);
    // `telemetry` adds the full gauge/histogram registry (per-event-boundary
    // state observation); `spans` adds request-lifecycle span folding;
    // `jsonl` adds full trace serialisation to disk.
    struct CountingProbe(u64);
    impl Probe for CountingProbe {
        fn on_event(&mut self, _now: SimTime, _event: &SimEvent) {
            self.0 += 1;
        }
    }
    let mut group = c.benchmark_group("probe_overhead_small_2h");
    group.sample_size(10);
    let cfg = SimConfig::builder(SystemSpec::small_paper())
        .policy(Policy::P4)
        .theta(0.271)
        .duration_hours(2.0)
        .warmup_hours(0.0)
        .seed(3)
        .build();
    group.bench_function("bare", |b| b.iter(|| black_box(Simulation::run(&cfg))));
    group.bench_function("counting", |b| {
        b.iter(|| {
            let mut probe = CountingProbe(0);
            black_box(Simulation::run_with_probes(&cfg, &mut [&mut probe]));
            black_box(probe.0)
        })
    });
    group.bench_function("telemetry", |b| {
        b.iter(|| {
            let mut probe = TelemetryProbe::new(&cfg);
            black_box(Simulation::run_with_probes(&cfg, &mut [&mut probe]));
            black_box(probe.finish())
        })
    });
    group.bench_function("spans", |b| {
        b.iter(|| {
            let mut probe = SpanProbe::new();
            black_box(Simulation::run_with_probes(&cfg, &mut [&mut probe]));
            black_box(probe.finish(cfg.duration.as_secs()))
        })
    });
    let path = std::env::temp_dir().join("sct-bench-trace.jsonl");
    group.bench_function("jsonl", |b| {
        b.iter(|| {
            let mut probe = JsonlTraceProbe::create(&path).expect("temp file");
            black_box(Simulation::run_with_probes(&cfg, &mut [&mut probe]));
            black_box(probe.finish().expect("trace flushes"))
        })
    });
    let _ = std::fs::remove_file(&path);
    group.finish();
}

criterion_group!(
    benches,
    bench_trials,
    bench_policy_cost,
    bench_probe_overhead
);
criterion_main!(benches);
