//! One benchmark per paper figure: each measures the cost of a single
//! scaled-down data point of that figure's sweep, so `cargo bench`
//! exercises exactly the code paths the figure-regeneration harness uses.
//! (The figures themselves are produced by the `figures` binary; see
//! EXPERIMENTS.md.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sct_admission::MigrationPolicy;
use sct_core::config::{SimConfig, StagingSpec};
use sct_core::policies::Policy;
use sct_core::simulation::Simulation;
use sct_workload::{HeterogeneityKind, SystemSpec};
use std::hint::black_box;

const HOURS: f64 = 1.0;

fn base(system: SystemSpec) -> sct_core::config::SimConfigBuilder {
    SimConfig::builder(system)
        .duration_hours(HOURS)
        .warmup_hours(0.0)
        .theta(0.271)
        .seed(3)
}

/// Fig. 4 — a no-migration point vs a single-hop-DRM point.
fn fig4_drm(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_drm_point");
    group.sample_size(10);
    let variants = [
        ("no_migration", MigrationPolicy::disabled()),
        (
            "hops_1",
            MigrationPolicy {
                handoff_latency_secs: 0.0,
                ..MigrationPolicy::single_hop()
            },
        ),
    ];
    for (name, migration) in variants {
        let cfg = base(SystemSpec::small_paper())
            .staging(StagingSpec::AbsoluteMb(0.0))
            .migration(migration)
            .build();
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(Simulation::run(cfg)))
        });
    }
    group.finish();
}

/// Fig. 5 — a data point per staging level.
fn fig5_staging(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_staging_point");
    group.sample_size(10);
    for fraction in [0.0, 0.2, 1.0] {
        let cfg = base(SystemSpec::small_paper())
            .staging_fraction(fraction)
            .build();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}pct", (fraction * 100.0) as u32)),
            &cfg,
            |b, cfg| b.iter(|| black_box(Simulation::run(cfg))),
        );
    }
    group.finish();
}

/// Fig. 7 — a data point per policy-table row.
fn fig7_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_policy_point");
    group.sample_size(10);
    for policy in Policy::ALL {
        let cfg = base(SystemSpec::small_paper()).policy(policy).build();
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &cfg,
            |b, cfg| b.iter(|| black_box(Simulation::run(cfg))),
        );
    }
    group.finish();
}

/// SVBR (E5) — single-server points at two sizes.
fn svbr_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("svbr_point");
    group.sample_size(10);
    for k in [10usize, 100] {
        let system = SystemSpec {
            name: format!("svbr-{k}"),
            n_servers: 1,
            server_bandwidth_mbps: k as f64 * 3.0,
            server_disk_gb: 10_000.0,
            n_videos: 50,
            video_length_secs: (600.0, 1800.0),
            view_rate_mbps: 3.0,
            client_receive_cap_mbps: 30.0,
            avg_copies: 1.0,
        };
        let cfg = base(system).staging(StagingSpec::AbsoluteMb(0.0)).build();
        group.bench_with_input(BenchmarkId::from_parameter(k), &cfg, |b, cfg| {
            b.iter(|| black_box(Simulation::run(cfg)))
        });
    }
    group.finish();
}

/// Heterogeneity (E6) — a bandwidth-spread point.
fn heterogeneity_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("het_point");
    group.sample_size(10);
    for spread in [0.0, 0.6] {
        let mut b = base(SystemSpec::large_paper().with_servers(10)).policy(Policy::P4);
        if spread > 0.0 {
            b = b.heterogeneity(HeterogeneityKind::Bandwidth, spread);
        }
        let cfg = b.build();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("spread_{}", (spread * 100.0) as u32)),
            &cfg,
            |b, cfg| b.iter(|| black_box(Simulation::run(cfg))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    fig4_drm,
    fig5_staging,
    fig7_policies,
    svbr_point,
    heterogeneity_point
);
criterion_main!(benches);
