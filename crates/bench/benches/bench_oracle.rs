//! Oracle stepper benchmark: exact event-boundary slicing vs the naive
//! fixed-Δt integrator on a long-drain scenario. The exact stepper's
//! replay cost is O(#events); the naive one pays O(duration / Δt). On a
//! two-hour drain that is a handful of closed-form slices against
//! ~720 000 fixed steps, and CI gates on the gap: the run records both
//! wall times into `results/BENCH_oracle.json` and the pipeline fails if
//! the exact stepper is not strictly faster (see .github/workflows).

use criterion::{criterion_group, criterion_main, Criterion};
use sct_cluster::ServerId;
use sct_core::oracle::{
    run_differential_with_stepper, OracleScenario, RefStepper, TraceOp, ORACLE_DT_SECS,
};
use sct_media::{ClientProfile, VideoId};
use sct_simcore::SimTime;
use sct_transmission::SchedulerKind;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct ScenarioInfo {
    name: &'static str,
    simulated_hours: f64,
    n_servers: usize,
    scheduler: &'static str,
}

#[derive(Serialize)]
struct ExactResult {
    wall_secs: f64,
    slices: u64,
}

#[derive(Serialize)]
struct NaiveResult {
    wall_secs: f64,
    dt_secs: f64,
    steps: u64,
}

#[derive(Serialize)]
struct Report {
    scenario: ScenarioInfo,
    exact: ExactResult,
    naive: NaiveResult,
    speedup: f64,
}

const DRAIN_HOURS: f64 = 2.0;
const RESULT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/BENCH_oracle.json"
);

/// The soak tier's lone-drain shape: a short companion clip plus one
/// multi-hour viewer at exactly the view rate, so the reference must be
/// carried across a long, eventless tail.
fn long_drain() -> OracleScenario {
    let size_mb = DRAIN_HOURS * 3600.0 * 3.0;
    OracleScenario {
        seed: 0x50AD,
        n_servers: 2,
        slots_per_server: 3,
        view_rate: 3.0,
        scheduler: SchedulerKind::Eftf,
        migration_on: false,
        chain2_on: false,
        restart_on: false,
        client: ClientProfile::no_staging(30.0),
        holders: vec![vec![ServerId(0)], vec![ServerId(0), ServerId(1)]],
        replication: None,
        waitlist: None,
        trace: vec![
            (
                SimTime::ZERO,
                TraceOp::Arrival {
                    video: VideoId(1),
                    size_mb: 300.0,
                },
            ),
            (
                SimTime::ZERO,
                TraceOp::Arrival {
                    video: VideoId(0),
                    size_mb,
                },
            ),
        ],
    }
}

/// Smallest-of-3 wall time for one full differential replay, plus the
/// slice count the reference needed.
fn measure(sc: &OracleScenario, stepper: RefStepper) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut slices = 0;
    for _ in 0..3 {
        let start = Instant::now();
        let out =
            run_differential_with_stepper(black_box(sc), stepper).unwrap_or_else(|d| panic!("{d}"));
        best = best.min(start.elapsed().as_secs_f64());
        slices = out.ref_slices;
    }
    (best, slices)
}

fn bench_oracle_stepper(c: &mut Criterion) {
    let sc = long_drain();
    let naive = RefStepper::Naive {
        dt_secs: ORACLE_DT_SECS,
    };

    let mut group = c.benchmark_group("oracle_stepper");
    group.sample_size(10);
    group.bench_function("exact_2h_drain", |b| {
        b.iter(|| run_differential_with_stepper(black_box(&sc), RefStepper::Exact).unwrap())
    });
    group.bench_function("naive_10ms_2h_drain", |b| {
        b.iter(|| run_differential_with_stepper(black_box(&sc), naive).unwrap())
    });
    group.finish();

    // The vendored criterion harness only prints; record the numbers the
    // CI gate consumes ourselves.
    let (exact_secs, exact_slices) = measure(&sc, RefStepper::Exact);
    let (naive_secs, naive_steps) = measure(&sc, naive);
    let report = Report {
        scenario: ScenarioInfo {
            name: "lone_drain",
            simulated_hours: DRAIN_HOURS,
            n_servers: sc.n_servers,
            scheduler: "Eftf",
        },
        exact: ExactResult {
            wall_secs: exact_secs,
            slices: exact_slices,
        },
        naive: NaiveResult {
            wall_secs: naive_secs,
            dt_secs: ORACLE_DT_SECS,
            steps: naive_steps,
        },
        speedup: naive_secs / exact_secs,
    };
    std::fs::write(
        RESULT_PATH,
        serde_json::to_string_pretty(&report).expect("report serializes") + "\n",
    )
    .expect("write results/BENCH_oracle.json");
    println!(
        "oracle_stepper: exact {exact_secs:.6} s ({exact_slices} slices) \
         vs naive {naive_secs:.6} s ({naive_steps} steps) — {:.0}x",
        naive_secs / exact_secs
    );
}

criterion_group!(benches, bench_oracle_stepper);
criterion_main!(benches);
