//! Ablation benches for the design choices DESIGN.md calls out: the DRM
//! victim-selection rule, the assignment policy, the hand-off latency
//! model, and the spare-bandwidth scheduler. Criterion reports the *time*
//! cost; each bench also asserts once that the variant is functional
//! (produces a sane utilization) so a silently broken variant cannot
//! "win" by doing nothing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sct_admission::{AssignmentPolicy, MigrationPolicy, VictimSelection};
use sct_core::config::SimConfig;
use sct_core::simulation::Simulation;
use sct_transmission::SchedulerKind;
use sct_workload::SystemSpec;
use std::hint::black_box;

fn base() -> sct_core::config::SimConfigBuilder {
    SimConfig::builder(SystemSpec::small_paper())
        .duration_hours(1.0)
        .warmup_hours(0.0)
        .theta(0.271)
        .staging_fraction(0.2)
        .seed(11)
}

fn ablation_victim(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_victim");
    group.sample_size(10);
    for victim in [
        VictimSelection::MostStaged,
        VictimSelection::FirstFeasible,
        VictimSelection::EarliestFinish,
        VictimSelection::Random,
    ] {
        let cfg = base()
            .migration(MigrationPolicy {
                handoff_latency_secs: 0.0,
                victim_selection: victim,
                ..MigrationPolicy::single_hop()
            })
            .build();
        let probe = Simulation::run(&cfg);
        assert!(probe.utilization > 0.5, "{victim:?} is broken");
        group.bench_with_input(
            BenchmarkId::from_parameter(victim.name()),
            &cfg,
            |b, cfg| b.iter(|| black_box(Simulation::run(cfg))),
        );
    }
    group.finish();
}

fn ablation_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_assignment");
    group.sample_size(10);
    for assignment in [
        AssignmentPolicy::LeastLoaded,
        AssignmentPolicy::Random,
        AssignmentPolicy::FirstFit,
        AssignmentPolicy::MostLoaded,
    ] {
        let cfg = base().assignment(assignment).build();
        let probe = Simulation::run(&cfg);
        assert!(probe.utilization > 0.4, "{assignment:?} is broken");
        group.bench_with_input(
            BenchmarkId::from_parameter(assignment.name()),
            &cfg,
            |b, cfg| b.iter(|| black_box(Simulation::run(cfg))),
        );
    }
    group.finish();
}

fn ablation_handoff(c: &mut Criterion) {
    // Our realistic extension: non-zero hand-off latency gates migration
    // on staged data. Latency 0 is the paper's idealisation.
    let mut group = c.benchmark_group("ablation_handoff");
    group.sample_size(10);
    for latency in [0.0f64, 1.0, 5.0, 30.0] {
        let cfg = base()
            .migration(MigrationPolicy {
                handoff_latency_secs: latency,
                ..MigrationPolicy::single_hop()
            })
            .build();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{latency}s")),
            &cfg,
            |b, cfg| b.iter(|| black_box(Simulation::run(cfg))),
        );
    }
    group.finish();
}

fn ablation_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scheduler");
    group.sample_size(10);
    for kind in SchedulerKind::ALL {
        let cfg = base().scheduler(kind).build();
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &cfg, |b, cfg| {
            b.iter(|| black_box(Simulation::run(cfg)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_victim,
    ablation_assignment,
    ablation_handoff,
    ablation_scheduler
);
criterion_main!(benches);
