//! Event-loop throughput floor: events/second for every scheduler ×
//! migration setting on the small paper system, measured by the loop's
//! own [`sct_core::LoopProfiler`], plus the `SpanProbe` attachment cost.
//!
//! The run records the full grid and the probe overhead into
//! `results/BENCH_sim.json`; CI fails if any cell stops producing
//! events or if span collection costs more than 5 % of a bare trial
//! (see .github/workflows). This is the production-loop counterpart to
//! `bench_oracle.rs`'s reference-stepper gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sct_admission::MigrationPolicy;
use sct_core::config::SimConfig;
use sct_core::policies::Policy;
use sct_core::simulation::Simulation;
use sct_core::{ExecRecorder, SpanProbe, TimeSeriesProbe};
use sct_transmission::SchedulerKind;
use sct_workload::SystemSpec;
use serde::{Deserialize, Serialize};
use std::hint::black_box;

#[derive(Serialize)]
struct ScenarioInfo {
    name: &'static str,
    simulated_hours: f64,
    theta: f64,
    seed: u64,
}

#[derive(Serialize)]
struct GridRow {
    scheduler: &'static str,
    migration: &'static str,
    events: u64,
    wall_secs: f64,
    events_per_sec: f64,
}

#[derive(Serialize)]
struct HugeRow {
    shards: usize,
    threads: usize,
    events: u64,
    wall_secs: f64,
    events_per_sec: f64,
}

#[derive(Serialize)]
struct HugeReport {
    simulated_hours: f64,
    theta: f64,
    seed: u64,
    concurrent_slots: usize,
    rows: Vec<HugeRow>,
}

#[derive(Serialize)]
struct ProbeOverhead {
    bare_wall_secs: f64,
    spans_wall_secs: f64,
    spans: usize,
    overhead_pct: f64,
    /// Flight-recorder attachment cost, measured the same way: minimum
    /// wall over interleaved repetitions with a `TimeSeriesProbe`
    /// (900 s windows, default SLO policy) attached.
    timeseries_wall_secs: f64,
    windows: usize,
    timeseries_overhead_pct: f64,
}

#[derive(Serialize)]
struct ExecOverhead {
    /// Minimum recorder-off wall over the interleaved repetitions on the
    /// Huge `(shards = 4, threads = 4)` cell.
    bare_wall_secs: f64,
    /// Same cell with the execution-plane recorder attached.
    exec_wall_secs: f64,
    epochs: u64,
    overhead_pct: f64,
}

#[derive(Serialize)]
struct Report {
    scenario: ScenarioInfo,
    grid: Vec<GridRow>,
    huge: HugeReport,
    probe_overhead: ProbeOverhead,
    /// Execution-plane recorder attachment cost on the Huge parallel
    /// cell — the recorder works per epoch, not per event, so CI gates
    /// this at ≤ 2 % (see .github/workflows).
    exec_overhead: ExecOverhead,
    /// Monotone throughput ratchet: the highest `RATCHET_FRACTION ×
    /// min(grid events/s)` any committed run has observed. CI fails when
    /// a run's slowest cell drops below this floor (after its own
    /// machine-variance allowance — see the workflow), so hot-path
    /// regressions cannot land silently; the floor only ever rises.
    floor_events_per_sec: f64,
    /// Ratchet for the Huge (million-slot) scenario, maintained the same
    /// way over the minimum events/s across its shard-count rows. Huge
    /// trials run seconds, not milliseconds, so its rows are single runs
    /// and the CI allowance (see the workflow) absorbs the extra jitter.
    huge_floor_events_per_sec: f64,
    /// Parallel speedup of this run: the Huge `(shards = 4, threads = 4)`
    /// row's events/s over the monolithic `(1, 1)` row's. The epoch
    /// protocol must never make the sharded loop slower than the
    /// single-queue loop, whatever the host's core count.
    huge_parallel_speedup: f64,
    /// Ratchet over `huge_parallel_speedup`, advanced like the
    /// throughput floors: CI fails when a run's speedup drops below its
    /// allowance of this value, so the parallel path cannot quietly
    /// decay back toward single-queue throughput.
    huge_speedup_floor: f64,
}

const SIM_HOURS: f64 = 2.0;
const THETA: f64 = 0.271;
const SEED: u64 = 5;

/// Huge is ~10^6 concurrent slots; even a few simulated minutes drives
/// hundreds of thousands of events, and one trial already costs seconds
/// of wall time. Keep the simulated span short so the whole bench stays
/// affordable.
const HUGE_SIM_HOURS: f64 = 0.05;
/// (shards, threads) cells for the Huge sweep: the monolithic baseline,
/// the classic sharded loop, and the epoch path at rising thread counts.
/// Determinism makes every row's event count identical, so the sweep
/// doubles as an end-to-end invariance check at scale.
const HUGE_COMBOS: [(usize, usize); 5] = [(1, 1), (4, 1), (4, 2), (4, 4), (4, 8)];
const RESULT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_sim.json");

/// Fraction of the measured minimum used when advancing the floor: a
/// guard band so an immediate same-machine rerun (min-of-3 jitter) still
/// clears its own ratchet.
const RATCHET_FRACTION: f64 = 0.9;

/// The floor recorded by the previous run, if the results file exists
/// and carries one (reports written before the ratchet existed fail the
/// field lookup and bootstrap from the current run).
fn prior_floor() -> Option<f64> {
    #[derive(Deserialize)]
    struct Prior {
        floor_events_per_sec: f64,
    }
    let text = std::fs::read_to_string(RESULT_PATH).ok()?;
    let prior: Prior = serde_json::from_str(&text).ok()?;
    Some(prior.floor_events_per_sec)
}

/// Same lookup for the Huge ratchet; reports written before the Huge
/// scenario existed lack the field and bootstrap from the current run.
fn prior_huge_floor() -> Option<f64> {
    #[derive(Deserialize)]
    struct Prior {
        huge_floor_events_per_sec: f64,
    }
    let text = std::fs::read_to_string(RESULT_PATH).ok()?;
    let prior: Prior = serde_json::from_str(&text).ok()?;
    Some(prior.huge_floor_events_per_sec)
}

/// Same lookup for the speedup ratchet; reports written before the
/// threaded sweep existed lack the field and bootstrap from this run.
fn prior_speedup_floor() -> Option<f64> {
    #[derive(Deserialize)]
    struct Prior {
        huge_speedup_floor: f64,
    }
    let text = std::fs::read_to_string(RESULT_PATH).ok()?;
    let prior: Prior = serde_json::from_str(&text).ok()?;
    Some(prior.huge_speedup_floor)
}

fn huge_config(shards: usize, threads: usize) -> SimConfig {
    SimConfig::builder(SystemSpec::huge())
        .theta(THETA)
        .duration_hours(HUGE_SIM_HOURS)
        .warmup_hours(0.0)
        .seed(SEED)
        .shards(shards)
        .threads(threads)
        .build()
}

fn grid_config(scheduler: SchedulerKind, migration: MigrationPolicy) -> SimConfig {
    // P4 fixes placement/staging; the sweep then overrides the two grid
    // axes, so every cell sees the identical workload.
    SimConfig::builder(SystemSpec::small_paper())
        .policy(Policy::P4)
        .theta(THETA)
        .duration_hours(SIM_HOURS)
        .warmup_hours(0.0)
        .seed(SEED)
        .scheduler(scheduler)
        .migration(migration)
        .build()
}

/// Smallest-of-`n` wall time as seen by the loop's own profiler, plus
/// the (deterministic) live-event count.
fn measure(cfg: &SimConfig, n: usize) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..n {
        let (_, profile) = Simulation::run_profiled(black_box(cfg), &mut []);
        best = best.min(profile.wall_secs);
        events = profile.events;
    }
    (best, events)
}

fn bench_simloop(c: &mut Criterion) {
    let migrations = [
        ("off", MigrationPolicy::disabled()),
        ("single_hop", MigrationPolicy::single_hop()),
    ];

    // Criterion timing for the representative corner cells; the manual
    // sweep below covers the full grid for the JSON report.
    let mut group = c.benchmark_group("simloop_small_2h");
    group.sample_size(10);
    for (mig_name, mig) in &migrations {
        let cfg = grid_config(SchedulerKind::Eftf, *mig);
        group.bench_with_input(BenchmarkId::new("eftf", *mig_name), &cfg, |b, cfg| {
            b.iter(|| black_box(Simulation::run_profiled(cfg, &mut [])))
        });
    }
    group.finish();

    let mut grid = Vec::new();
    for scheduler in SchedulerKind::ALL {
        for (mig_name, mig) in &migrations {
            let cfg = grid_config(scheduler, *mig);
            let (wall_secs, events) = measure(&cfg, 7);
            grid.push(GridRow {
                scheduler: scheduler.name(),
                migration: mig_name,
                events,
                wall_secs,
                events_per_sec: events as f64 / wall_secs,
            });
            println!(
                "simloop: {:<5} migration={:<10} {events:>8} events  {wall_secs:.4} s  \
                 ({:.0} events/s)",
                scheduler.name(),
                mig_name,
                events as f64 / wall_secs
            );
        }
    }

    // The million-slot Huge scenario: monolithic, classic sharded, and
    // the epoch path at rising thread counts. Each trial costs seconds,
    // so every cell takes the better of two runs — enough to shed the
    // worst host-jitter outliers without doubling the bench again;
    // determinism makes the event count identical across every row.
    let mut huge_rows = Vec::new();
    for (shards, threads) in HUGE_COMBOS {
        let cfg = huge_config(shards, threads);
        let (wall_secs, events) = measure(&cfg, 2);
        println!(
            "simloop: huge shards={shards} threads={threads} {events:>8} events  \
             {wall_secs:.4} s  ({:.0} events/s)",
            events as f64 / wall_secs
        );
        huge_rows.push(HugeRow {
            shards,
            threads,
            events,
            wall_secs,
            events_per_sec: events as f64 / wall_secs,
        });
    }

    // SpanProbe attachment cost on the busiest cell (EFTF + migration,
    // the paper's own configuration). Trials run a few milliseconds, so
    // the two sides are interleaved and each takes its minimum over many
    // repetitions — that keeps the CI gate on the probe's real cost, not
    // on scheduler jitter hitting one side.
    let cfg = grid_config(SchedulerKind::Eftf, MigrationPolicy::single_hop());
    let mut bare_wall_secs = f64::INFINITY;
    let mut spans_wall_secs = f64::INFINITY;
    let mut timeseries_wall_secs = f64::INFINITY;
    let mut n_spans = 0;
    let mut n_windows = 0;
    for _ in 0..31 {
        let (_, profile) = Simulation::run_profiled(black_box(&cfg), &mut []);
        bare_wall_secs = bare_wall_secs.min(profile.wall_secs);
        let mut probe = SpanProbe::new();
        let (_, profile) = Simulation::run_profiled(black_box(&cfg), &mut [&mut probe]);
        spans_wall_secs = spans_wall_secs.min(profile.wall_secs);
        n_spans = probe.finish(cfg.duration.as_secs()).spans.len();
        let mut ts_probe = TimeSeriesProbe::new(&cfg, 900.0);
        let (_, profile) = Simulation::run_profiled(black_box(&cfg), &mut [&mut ts_probe]);
        timeseries_wall_secs = timeseries_wall_secs.min(profile.wall_secs);
        n_windows = ts_probe.finish().windows.len();
    }
    let overhead_pct = (spans_wall_secs - bare_wall_secs) / bare_wall_secs * 100.0;
    println!(
        "simloop: span probe {spans_wall_secs:.4} s vs bare {bare_wall_secs:.4} s \
         ({n_spans} spans, {overhead_pct:+.2} %)"
    );
    let timeseries_overhead_pct = (timeseries_wall_secs - bare_wall_secs) / bare_wall_secs * 100.0;
    println!(
        "simloop: time-series probe {timeseries_wall_secs:.4} s vs bare {bare_wall_secs:.4} s \
         ({n_windows} windows, {timeseries_overhead_pct:+.2} %)"
    );

    // Execution-plane recorder cost on the Huge parallel cell, where the
    // epoch machinery it instruments actually runs. Sides interleave and
    // each takes its minimum, like the probe measurement above. The real
    // per-epoch cost is a few dozen nanoseconds (scratch reuse + flat
    // buffers — no allocation in steady state), far below this box's
    // run-to-run jitter, so the repetitions exist to stabilise the
    // minimum against that jitter, not to resolve the recorder.
    let cfg = huge_config(4, 4);
    let mut exec_bare_wall_secs = f64::INFINITY;
    let mut exec_wall_secs = f64::INFINITY;
    let mut exec_epochs = 0;
    for _ in 0..7 {
        let (_, profile) = Simulation::run_profiled(black_box(&cfg), &mut []);
        exec_bare_wall_secs = exec_bare_wall_secs.min(profile.wall_secs);
        let mut rec = ExecRecorder::new();
        let (_, profile, _, stats) =
            Simulation::run_instrumented(black_box(&cfg), &mut [], Some(&mut rec));
        exec_wall_secs = exec_wall_secs.min(profile.wall_secs);
        exec_epochs = stats.epochs_run;
    }
    let exec_overhead_pct = (exec_wall_secs - exec_bare_wall_secs) / exec_bare_wall_secs * 100.0;
    println!(
        "simloop: exec recorder {exec_wall_secs:.4} s vs bare {exec_bare_wall_secs:.4} s \
         ({exec_epochs} epochs, {exec_overhead_pct:+.2} %)"
    );

    let min_eps = grid
        .iter()
        .map(|row| row.events_per_sec)
        .fold(f64::INFINITY, f64::min);
    let floor_events_per_sec = prior_floor().unwrap_or(0.0).max(RATCHET_FRACTION * min_eps);
    println!(
        "simloop: grid floor {min_eps:.0} events/s, ratchet {floor_events_per_sec:.0} events/s"
    );

    let huge_min_eps = huge_rows
        .iter()
        .map(|row| row.events_per_sec)
        .fold(f64::INFINITY, f64::min);
    let huge_floor_events_per_sec = prior_huge_floor()
        .unwrap_or(0.0)
        .max(RATCHET_FRACTION * huge_min_eps);
    println!(
        "simloop: huge floor {huge_min_eps:.0} events/s, ratchet \
         {huge_floor_events_per_sec:.0} events/s"
    );

    let huge_eps = |shards: usize, threads: usize| {
        huge_rows
            .iter()
            .find(|row| (row.shards, row.threads) == (shards, threads))
            .map(|row| row.events_per_sec)
            .expect("huge combo measured")
    };
    let huge_parallel_speedup = huge_eps(4, 4) / huge_eps(1, 1);
    let huge_speedup_floor = prior_speedup_floor()
        .unwrap_or(0.0)
        .max(RATCHET_FRACTION * huge_parallel_speedup);
    println!(
        "simloop: huge parallel speedup {huge_parallel_speedup:.2}x, ratchet \
         {huge_speedup_floor:.2}x"
    );

    let report = Report {
        scenario: ScenarioInfo {
            name: "small_paper",
            simulated_hours: SIM_HOURS,
            theta: THETA,
            seed: SEED,
        },
        grid,
        huge: HugeReport {
            simulated_hours: HUGE_SIM_HOURS,
            theta: THETA,
            seed: SEED,
            concurrent_slots: {
                let spec = SystemSpec::huge();
                spec.n_servers * spec.svbr()
            },
            rows: huge_rows,
        },
        probe_overhead: ProbeOverhead {
            bare_wall_secs,
            spans_wall_secs,
            spans: n_spans,
            overhead_pct,
            timeseries_wall_secs,
            windows: n_windows,
            timeseries_overhead_pct,
        },
        exec_overhead: ExecOverhead {
            bare_wall_secs: exec_bare_wall_secs,
            exec_wall_secs,
            epochs: exec_epochs,
            overhead_pct: exec_overhead_pct,
        },
        floor_events_per_sec,
        huge_floor_events_per_sec,
        huge_parallel_speedup,
        huge_speedup_floor,
    };
    std::fs::write(
        RESULT_PATH,
        serde_json::to_string_pretty(&report).expect("report serializes") + "\n",
    )
    .expect("write results/BENCH_sim.json");
}

criterion_group!(benches, bench_simloop);
criterion_main!(benches);
