//! Shared harness helpers for the figure-regeneration binary and the
//! Criterion benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sct_analysis::svg::{render_series, SvgOptions};
use sct_analysis::Series;
use std::fs;
use std::path::Path;

/// Writes a series to `<dir>/<stem>.{md,json,svg}`, creating the directory
/// if needed, and returns the markdown rendering.
pub fn save_series(dir: &Path, stem: &str, series: &Series) -> std::io::Result<String> {
    fs::create_dir_all(dir)?;
    let md = series.to_markdown();
    fs::write(dir.join(format!("{stem}.md")), &md)?;
    fs::write(dir.join(format!("{stem}.json")), series.to_json())?;
    fs::write(
        dir.join(format!("{stem}.svg")),
        render_series(series, &SvgOptions::default()),
    )?;
    Ok(md)
}

/// Renders a quick ASCII sketch of a series (one line per curve) so the
/// harness output is eyeballable without plotting tools: each point is the
/// mean scaled into `[0, width)` over `[lo, hi]`.
pub fn sparkline(series: &Series, lo: f64, hi: f64) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let mut out = String::new();
    let label_width = series
        .curves
        .iter()
        .map(|c| c.label.len())
        .max()
        .unwrap_or(0);
    for c in &series.curves {
        let mut line = format!("{:width$}  ", c.label, width = label_width);
        for p in &c.points {
            let t = ((p.mean - lo) / (hi - lo)).clamp(0.0, 1.0);
            let idx = ((t * (GLYPHS.len() - 1) as f64).round()) as usize;
            line.push(GLYPHS[idx]);
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_simcore::Summary;

    fn series() -> Series {
        let mut s = Series::new("t", "x", "y", vec![0.0, 1.0]);
        s.push_curve("a", vec![Summary::of(&[0.0]), Summary::of(&[1.0])]);
        s.push_curve("bb", vec![Summary::of(&[0.5]), Summary::of(&[0.5])]);
        s
    }

    #[test]
    fn sparkline_spans_glyph_range() {
        let sk = sparkline(&series(), 0.0, 1.0);
        let lines: Vec<&str> = sk.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('▁') && lines[0].contains('█'));
        assert!(lines[1].starts_with("bb"));
    }

    #[test]
    fn save_series_round_trips() {
        let dir = std::env::temp_dir().join("sct-bench-test");
        let md = save_series(&dir, "unit", &series()).unwrap();
        assert!(md.contains("### t"));
        let json = std::fs::read_to_string(dir.join("unit.json")).unwrap();
        assert_eq!(Series::from_json(&json).unwrap(), series());
        let svg = std::fs::read_to_string(dir.join("unit.svg")).unwrap();
        assert!(svg.starts_with("<svg"));
    }
}
