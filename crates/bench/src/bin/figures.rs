//! Regenerates every table and figure of the paper (plus the tech-report
//! extensions) and writes markdown + JSON into `results/`.
//!
//! ```text
//! cargo run --release -p sct-bench --bin figures -- all --standard
//! cargo run --release -p sct-bench --bin figures -- fig4 fig5 --quick
//! cargo run --release -p sct-bench --bin figures -- fig7 --paper   # 5 × 1000 h
//! ```
//!
//! Experiments: fig3 fig4 fig5 fig6 fig7 svbr het partial sweep ablation
//! faults pauses.

use sct_bench::{save_series, sparkline};
use sct_core::experiments::{self, ExpOptions};
use sct_workload::{HeterogeneityKind, SystemSpec};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ExpOptions::standard();
    let mut fidelity = "standard";
    let mut wanted: Vec<String> = Vec::new();
    let mut out_dir = PathBuf::from("results");
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" => {
                opts = ExpOptions::quick();
                fidelity = "quick";
            }
            "--standard" => {
                opts = ExpOptions::standard();
                fidelity = "standard";
            }
            "--paper" => {
                opts = ExpOptions::paper();
                fidelity = "paper";
            }
            "--out" => {
                out_dir = PathBuf::from(iter.next().expect("--out needs a path"));
            }
            "--trials" => {
                opts.trials = iter
                    .next()
                    .expect("--trials needs a count")
                    .parse()
                    .expect("--trials must be an integer");
            }
            "--hours" => {
                opts.duration_hours = iter
                    .next()
                    .expect("--hours needs a number")
                    .parse()
                    .expect("--hours must be a number");
            }
            "all" => wanted.extend(
                [
                    "fig3",
                    "fig4",
                    "fig5",
                    "fig6",
                    "fig7",
                    "svbr",
                    "het",
                    "partial",
                    "sweep",
                    "ablation",
                    "faults",
                    "pauses",
                    "repl",
                    "smoothing",
                    "rejections",
                    "waitlist",
                    "chains",
                    "diurnal",
                ]
                .iter()
                .map(|s| s.to_string()),
            ),
            other if other.starts_with('-') => panic!("unknown flag {other}"),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        eprintln!(
            "usage: figures [all|fig3|fig4|fig5|fig6|fig7|svbr|het|partial|sweep|ablation]... \
             [--quick|--standard|--paper] [--trials N] [--hours H] [--out DIR]\n\
             (also: faults pauses repl smoothing rejections waitlist chains diurnal)"
        );
        std::process::exit(2);
    }
    wanted.dedup();

    println!(
        "# Semi-continuous transmission — figure regeneration ({fidelity}: {} trials × {} h)\n",
        opts.trials, opts.duration_hours
    );
    let small = SystemSpec::small_paper();
    let large = SystemSpec::large_paper();

    for exp in &wanted {
        let t0 = Instant::now();
        match exp.as_str() {
            "fig3" => {
                let t = experiments::fig3_table();
                std::fs::create_dir_all(&out_dir).unwrap();
                std::fs::write(out_dir.join("fig3.md"), t.to_markdown()).unwrap();
                println!("## Fig. 3 — system parameters\n\n{}", t.to_text());
            }
            "fig6" => {
                let t = experiments::fig6_table();
                std::fs::create_dir_all(&out_dir).unwrap();
                std::fs::write(out_dir.join("fig6.md"), t.to_markdown()).unwrap();
                println!("## Fig. 6 — policies evaluated\n\n{}", t.to_text());
            }
            "fig4" => {
                for (sys, tag) in [(&large, "large"), (&small, "small")] {
                    let s = experiments::fig4(sys, &opts);
                    let md = save_series(&out_dir, &format!("fig4_{tag}"), &s).unwrap();
                    println!("{md}");
                    println!("{}", sparkline(&s, 0.5, 1.0));
                }
            }
            "fig5" => {
                for (sys, tag) in [(&large, "large"), (&small, "small")] {
                    let s = experiments::fig5(sys, &opts);
                    let md = save_series(&out_dir, &format!("fig5_{tag}"), &s).unwrap();
                    println!("{md}");
                    println!("{}", sparkline(&s, 0.5, 1.0));
                }
            }
            "fig7" => {
                for (sys, tag) in [(&large, "large"), (&small, "small")] {
                    let s = experiments::fig7(sys, &opts);
                    let md = save_series(&out_dir, &format!("fig7_{tag}"), &s).unwrap();
                    println!("{md}");
                    println!("{}", sparkline(&s, 0.5, 1.0));
                }
            }
            "svbr" => {
                let s = experiments::svbr(&opts);
                let md = save_series(&out_dir, "svbr", &s).unwrap();
                println!("{md}");
                println!("{}", sparkline(&s, 0.5, 1.0));
            }
            "het" => {
                for kind in [HeterogeneityKind::Bandwidth, HeterogeneityKind::Storage] {
                    let s = experiments::heterogeneity(kind, &opts);
                    let tag = format!("het_{kind:?}").to_lowercase();
                    let md = save_series(&out_dir, &tag, &s).unwrap();
                    println!("{md}");
                    println!("{}", sparkline(&s, 0.5, 1.0));
                }
            }
            "partial" => {
                for (sys, tag) in [(&large, "large"), (&small, "small")] {
                    let s = experiments::partial_predictive(sys, &opts);
                    let md = save_series(&out_dir, &format!("partial_{tag}"), &s).unwrap();
                    println!("{md}");
                    println!("{}", sparkline(&s, 0.5, 1.0));
                }
            }
            "sweep" => {
                for (sys, tag) in [(&large, "large"), (&small, "small")] {
                    let s = experiments::staging_sweep(sys, &opts);
                    let md = save_series(&out_dir, &format!("sweep_{tag}"), &s).unwrap();
                    println!("{md}");
                    println!("{}", sparkline(&s, 0.5, 1.0));
                }
            }
            "faults" => {
                for (sys, tag) in [(&small, "small"), (&large, "large")] {
                    let s = experiments::fault_tolerance(sys, &opts);
                    let md = save_series(&out_dir, &format!("faults_{tag}"), &s).unwrap();
                    println!("{md}");
                    println!("{}", sparkline(&s, 0.0, 1.0));
                }
            }
            "pauses" => {
                for (sys, tag) in [(&small, "small"), (&large, "large")] {
                    let s = experiments::interactivity(sys, &opts);
                    let md = save_series(&out_dir, &format!("pauses_{tag}"), &s).unwrap();
                    println!("{md}");
                    println!("{}", sparkline(&s, 0.5, 1.0));
                }
            }
            "repl" => {
                for (sys, tag) in [(&small, "small"), (&large, "large")] {
                    let s = experiments::replication_vs_drm(sys, &opts);
                    let md = save_series(&out_dir, &format!("repl_{tag}"), &s).unwrap();
                    println!("{md}");
                    println!("{}", sparkline(&s, 0.3, 1.0));
                }
            }
            "smoothing" => {
                let s = experiments::smoothing(&small, &opts);
                let md = save_series(&out_dir, "smoothing_small", &s).unwrap();
                println!("{md}");
                println!("{}", sparkline(&s, 0.5, 1.0));
            }
            "rejections" => {
                for (sys, tag) in [(&small, "small"), (&large, "large")] {
                    let t = experiments::rejection_profile(sys, &opts);
                    std::fs::create_dir_all(&out_dir).unwrap();
                    std::fs::write(
                        out_dir.join(format!("rejections_{tag}.md")),
                        t.to_markdown(),
                    )
                    .unwrap();
                    println!("## Rejection profile ({tag})\n\n{}", t.to_text());
                }
            }
            "waitlist" => {
                for (sys, tag) in [(&small, "small"), (&large, "large")] {
                    let s = experiments::waitlist(sys, &opts);
                    let md = save_series(&out_dir, &format!("waitlist_{tag}"), &s).unwrap();
                    println!("{md}");
                    println!("{}", sparkline(&s, 0.0, 1.0));
                }
            }
            "chains" => {
                for (sys, tag) in [(&small, "small"), (&large, "large")] {
                    let s = experiments::migration_depth(sys, &opts);
                    let md = save_series(&out_dir, &format!("chains_{tag}"), &s).unwrap();
                    println!("{md}");
                    println!("{}", sparkline(&s, 0.5, 1.0));
                }
            }
            "diurnal" => {
                for (sys, tag) in [(&small, "small"), (&large, "large")] {
                    let s = experiments::diurnal(sys, &opts);
                    let md = save_series(&out_dir, &format!("diurnal_{tag}"), &s).unwrap();
                    println!("{md}");
                    println!("{}", sparkline(&s, 0.5, 1.0));
                }
            }
            "render" => {
                // Re-render SVGs from every saved series JSON in --out,
                // without re-running any simulation.
                let mut n = 0;
                for entry in std::fs::read_dir(&out_dir).expect("results dir") {
                    let path = entry.expect("dir entry").path();
                    if path.extension().and_then(|e| e.to_str()) == Some("json") {
                        let text = std::fs::read_to_string(&path).unwrap();
                        if let Ok(series) = sct_analysis::Series::from_json(&text) {
                            let svg = sct_analysis::svg::render_series(
                                &series,
                                &sct_analysis::svg::SvgOptions::default(),
                            );
                            std::fs::write(path.with_extension("svg"), svg).unwrap();
                            n += 1;
                        }
                    }
                }
                println!("rendered {n} SVGs in {}", out_dir.display());
            }
            "ablation" => {
                for (sys, tag) in [(&small, "small"), (&large, "large")] {
                    let s = experiments::scheduler_ablation(sys, &opts);
                    let md = save_series(&out_dir, &format!("ablation_{tag}"), &s).unwrap();
                    println!("{md}");
                    println!("{}", sparkline(&s, 0.5, 1.0));
                }
            }
            other => eprintln!("skipping unknown experiment: {other}"),
        }
        eprintln!("[{exp} done in {:.1?}]", t0.elapsed());
    }
}
