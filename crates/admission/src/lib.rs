//! Admission control for the distribution controller.
//!
//! "When a request to view a particular video arrives in the system, the
//! distribution controller must decide whether or not to accept the
//! incoming request … it must be allocated to a particular server within
//! the cluster which holds a replica of the requested video and which also
//! has the available resources to begin transmission immediately" (§2).
//!
//! This crate implements that decision:
//!
//! * [`policy`] — request *assignment* among eligible replica holders
//!   (least-loaded, as in the paper, plus ablation alternatives) and the
//!   *migration* policy knobs (hops per request, hand-off latency, victim
//!   selection).
//! * [`controller`] — the [`Controller`]: direct placement when a holder
//!   has a free slot, otherwise **dynamic request migration** (§3.1): move
//!   one active stream from a full holder to another server that stores its
//!   video and has capacity, freeing the slot for the new arrival. The
//!   migration chain length is fixed at one, exactly as in the paper's
//!   experiments (§4.2).
//! * [`replication`] — the *dynamic replication* alternative §3.1 alludes
//!   to ("more resource intensive solutions perform dynamic replication of
//!   the requested object"): background replica copies that consume real
//!   server bandwidth, for head-to-head comparison with DRM.
//! * [`waitlist`] — an optional FIFO wait queue with patience bounds (the
//!   paper rejects outright; real front-ends let viewers wait a little).
//! * [`stats`] — acceptance/rejection/migration accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod policy;
pub mod replication;
pub mod stats;
pub mod waitlist;

pub use controller::{Admission, ChainPlan, Controller, Evacuation, Relocation, RelocationKind};
pub use policy::{AssignmentPolicy, EvacuationPolicy, MigrationPolicy, VictimSelection};
pub use replication::{
    CopyLaunch, CopySource, ReplicationManager, ReplicationSpec, ReplicationStats,
};
pub use stats::AdmissionStats;
pub use waitlist::{ServeOutcome, ServedWaiter, Waitlist, WaitlistSpec, WaitlistStats};
