//! Admission accounting.

use serde::{Deserialize, Serialize};

/// Counters maintained by the [`crate::Controller`] over one trial.
///
/// `Serialize`/`Deserialize` are hand-written below rather than derived:
/// the vendored minimal serde has no `#[serde(default)]`, and golden
/// `SimOutcome` fixtures written before `restarted_on_failure` existed
/// must keep deserializing (the missing counter defaults to 0).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AdmissionStats {
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests placed directly on a holder with a free slot.
    pub accepted_direct: u64,
    /// Requests placed after one dynamic request migration (includes the
    /// chain-2 admissions below).
    pub accepted_via_migration: u64,
    /// The subset of `accepted_via_migration` that needed a two-step
    /// chain (extension; 0 at the paper's chain length 1).
    pub chain2_migrations: u64,
    /// Requests rejected.
    pub rejected: u64,
    /// Megabits of video requested (accepted or not).
    pub requested_mb: f64,
    /// Megabits of video accepted for service.
    pub accepted_mb: f64,
    /// Streams moved to another replica holder when their server failed
    /// (fault-tolerance extension; 0 without failures).
    pub relocated_on_failure: u64,
    /// Streams restarted from the playback point on another holder when a
    /// seamless hand-off was infeasible (best-effort evacuation policy;
    /// 0 under the strict policy).
    pub restarted_on_failure: u64,
    /// Streams lost because no replica holder could absorb them when their
    /// server failed.
    pub dropped_on_failure: u64,
}

impl Serialize for AdmissionStats {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("arrivals".to_string(), self.arrivals.to_value()),
            (
                "accepted_direct".to_string(),
                self.accepted_direct.to_value(),
            ),
            (
                "accepted_via_migration".to_string(),
                self.accepted_via_migration.to_value(),
            ),
            (
                "chain2_migrations".to_string(),
                self.chain2_migrations.to_value(),
            ),
            ("rejected".to_string(), self.rejected.to_value()),
            ("requested_mb".to_string(), self.requested_mb.to_value()),
            ("accepted_mb".to_string(), self.accepted_mb.to_value()),
            (
                "relocated_on_failure".to_string(),
                self.relocated_on_failure.to_value(),
            ),
            (
                "restarted_on_failure".to_string(),
                self.restarted_on_failure.to_value(),
            ),
            (
                "dropped_on_failure".to_string(),
                self.dropped_on_failure.to_value(),
            ),
        ])
    }
}

impl Deserialize for AdmissionStats {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let serde::Value::Map(m) = v else {
            return Err(serde::DeError::expected("map", "AdmissionStats"));
        };
        let field = |name: &str| serde::map_field(m, name, "AdmissionStats");
        Ok(AdmissionStats {
            arrivals: Deserialize::from_value(field("arrivals")?)?,
            accepted_direct: Deserialize::from_value(field("accepted_direct")?)?,
            accepted_via_migration: Deserialize::from_value(field("accepted_via_migration")?)?,
            chain2_migrations: Deserialize::from_value(field("chain2_migrations")?)?,
            rejected: Deserialize::from_value(field("rejected")?)?,
            requested_mb: Deserialize::from_value(field("requested_mb")?)?,
            accepted_mb: Deserialize::from_value(field("accepted_mb")?)?,
            relocated_on_failure: Deserialize::from_value(field("relocated_on_failure")?)?,
            // Absent in fixtures that predate the counter: default to 0.
            restarted_on_failure: match field("restarted_on_failure") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => 0,
            },
            dropped_on_failure: Deserialize::from_value(field("dropped_on_failure")?)?,
        })
    }
}

impl AdmissionStats {
    /// All accepted requests.
    pub fn accepted(&self) -> u64 {
        self.accepted_direct + self.accepted_via_migration
    }

    /// Fraction of arrivals accepted (1.0 when no arrivals).
    pub fn acceptance_ratio(&self) -> f64 {
        if self.arrivals == 0 {
            1.0
        } else {
            self.accepted() as f64 / self.arrivals as f64
        }
    }

    /// Fraction of arrivals rejected.
    pub fn rejection_ratio(&self) -> f64 {
        1.0 - self.acceptance_ratio()
    }

    /// Fraction of requested megabits that were accepted — the
    /// data-weighted acceptance ratio, which (over a long run) converges
    /// to the bandwidth utilization under 100 % offered load.
    pub fn accepted_data_ratio(&self) -> f64 {
        if self.requested_mb <= 0.0 {
            1.0
        } else {
            self.accepted_mb / self.requested_mb
        }
    }

    /// Merges counters from another trial segment.
    pub fn merge(&mut self, other: &AdmissionStats) {
        self.arrivals += other.arrivals;
        self.accepted_direct += other.accepted_direct;
        self.accepted_via_migration += other.accepted_via_migration;
        self.chain2_migrations += other.chain2_migrations;
        self.rejected += other.rejected;
        self.requested_mb += other.requested_mb;
        self.accepted_mb += other.accepted_mb;
        self.relocated_on_failure += other.relocated_on_failure;
        self.restarted_on_failure += other.restarted_on_failure;
        self.dropped_on_failure += other.dropped_on_failure;
    }

    /// Internal consistency check (counts add up).
    pub fn check(&self) {
        assert_eq!(
            self.arrivals,
            self.accepted() + self.rejected,
            "admission counters do not add up"
        );
        assert!(self.accepted_mb <= self.requested_mb + 1e-6);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AdmissionStats {
        AdmissionStats {
            arrivals: 10,
            accepted_direct: 6,
            accepted_via_migration: 2,
            rejected: 2,
            requested_mb: 1000.0,
            accepted_mb: 800.0,
            ..Default::default()
        }
    }

    #[test]
    fn ratios() {
        let s = sample();
        s.check();
        assert_eq!(s.accepted(), 8);
        assert!((s.acceptance_ratio() - 0.8).abs() < 1e-12);
        assert!((s.rejection_ratio() - 0.2).abs() < 1e-12);
        assert!((s.accepted_data_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = AdmissionStats::default();
        s.check();
        assert_eq!(s.acceptance_ratio(), 1.0);
        assert_eq!(s.accepted_data_ratio(), 1.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = sample();
        a.merge(&sample());
        a.check();
        assert_eq!(a.arrivals, 20);
        assert_eq!(a.accepted(), 16);
        assert_eq!(a.requested_mb, 2000.0);
    }
}
