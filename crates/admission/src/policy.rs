//! Assignment and migration policy knobs.

use serde::{Deserialize, Serialize};

/// How the controller chooses among eligible replica holders.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssignmentPolicy {
    /// The paper's rule: "the server … has the fewest current requests"
    /// (§3.2). Ties break toward the lowest server id.
    LeastLoaded,
    /// A uniformly random eligible holder (ablation).
    Random,
    /// The lowest-id eligible holder (ablation).
    FirstFit,
    /// The *most* loaded eligible holder — adversarial ablation that packs
    /// servers and starves the placement of slack.
    MostLoaded,
}

impl AssignmentPolicy {
    /// Short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AssignmentPolicy::LeastLoaded => "least-loaded",
            AssignmentPolicy::Random => "random",
            AssignmentPolicy::FirstFit => "first-fit",
            AssignmentPolicy::MostLoaded => "most-loaded",
        }
    }
}

/// Which feasible victim a migration prefers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VictimSelection {
    /// The stream with the most staged client data — the safest hand-off
    /// (default; the paper does not specify a rule).
    MostStaged,
    /// The first feasible stream in server-internal order.
    FirstFeasible,
    /// The stream with the earliest projected finish (it will release its
    /// slot soonest anyway; moving it frees the least future capacity).
    EarliestFinish,
    /// A uniformly random feasible stream.
    Random,
}

impl VictimSelection {
    /// Short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            VictimSelection::MostStaged => "most-staged",
            VictimSelection::FirstFeasible => "first-feasible",
            VictimSelection::EarliestFinish => "earliest-finish",
            VictimSelection::Random => "random",
        }
    }
}

/// Dynamic-request-migration configuration (§3.1, §4.2).
///
/// ```
/// use sct_admission::MigrationPolicy;
/// let p = MigrationPolicy::single_hop();
/// assert!(p.allows_another_hop(0));
/// assert!(!p.allows_another_hop(1));    // one hop per request, as in §4.2
/// assert_eq!(p.required_staging_mb(3.0), 3.0); // 1 s hand-off at b_view
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MigrationPolicy {
    /// Master switch. When off, a request with no free holder is rejected.
    pub enabled: bool,
    /// Maximum migrations performed to admit ONE arrival ("migration
    /// chain length"). The paper fixes this at 1; 2 enables two-step
    /// chains (move B to make room for A, move A to make room for the
    /// arrival) as an extension/ablation.
    pub max_chain_length: u32,
    /// Maximum times any single stream may be migrated over its lifetime
    /// ("hops per request"). `None` = unlimited.
    pub max_hops_per_request: Option<u32>,
    /// Seconds of stream hand-off the client must be able to mask from its
    /// staging buffer: a victim is feasible only if
    /// `staged ≥ handoff_latency × b_view`.
    pub handoff_latency_secs: f64,
    /// Victim preference among feasible candidates.
    pub victim_selection: VictimSelection,
}

impl MigrationPolicy {
    /// Migration disabled (the paper's "No migration" curves).
    pub fn disabled() -> Self {
        MigrationPolicy {
            enabled: false,
            max_chain_length: 0,
            max_hops_per_request: Some(0),
            handoff_latency_secs: 1.0,
            victim_selection: VictimSelection::MostStaged,
        }
    }

    /// The paper's main configuration: chain length 1 (inherent to the
    /// algorithm) and at most one hop per request over its lifetime.
    pub fn single_hop() -> Self {
        MigrationPolicy {
            enabled: true,
            max_chain_length: 1,
            max_hops_per_request: Some(1),
            handoff_latency_secs: 1.0,
            victim_selection: VictimSelection::MostStaged,
        }
    }

    /// Unlimited hops per request (the paper's comparison curve in Fig. 4).
    pub fn unlimited_hops() -> Self {
        MigrationPolicy {
            enabled: true,
            max_chain_length: 1,
            max_hops_per_request: None,
            handoff_latency_secs: 1.0,
            victim_selection: VictimSelection::MostStaged,
        }
    }

    /// Two-step chains, one hop per request (extension/ablation).
    pub fn chain2() -> Self {
        MigrationPolicy {
            max_chain_length: 2,
            ..Self::single_hop()
        }
    }

    /// `true` if a stream with `hops` prior migrations may move again.
    pub fn allows_another_hop(&self, hops: u32) -> bool {
        self.enabled
            && match self.max_hops_per_request {
                Some(max) => hops < max,
                None => true,
            }
    }

    /// The staged megabits a victim needs for a feasible hand-off.
    pub fn required_staging_mb(&self, view_rate: f64) -> f64 {
        self.handoff_latency_secs * view_rate
    }
}

/// Fault-tolerance evacuation knobs (the paper itself never fails a
/// server; this governs the fault-tolerance extension).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EvacuationPolicy {
    /// When a stream on a failed server cannot make a *seamless*
    /// hand-off — its client has staged less than the hand-off
    /// requirement, or migration is disabled entirely — restart it on
    /// another capable holder from the playback point instead of
    /// dropping it. The viewer rebuffers (the staged workahead is lost
    /// and retransmitted) but keeps service. Off by default: the
    /// paper-faithful policy drops such streams.
    pub best_effort_restart: bool,
}

impl EvacuationPolicy {
    /// Drop any stream that cannot hand off seamlessly (paper-faithful).
    pub fn strict() -> Self {
        EvacuationPolicy {
            best_effort_restart: false,
        }
    }

    /// Restart unseamable streams from the playback point when any
    /// online holder has a free slot.
    pub fn best_effort() -> Self {
        EvacuationPolicy {
            best_effort_restart: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_allows_nothing() {
        let p = MigrationPolicy::disabled();
        assert!(!p.allows_another_hop(0));
    }

    #[test]
    fn single_hop_budget() {
        let p = MigrationPolicy::single_hop();
        assert!(p.allows_another_hop(0));
        assert!(!p.allows_another_hop(1));
        assert!(!p.allows_another_hop(5));
    }

    #[test]
    fn unlimited_hops_always_allow() {
        let p = MigrationPolicy::unlimited_hops();
        assert!(p.allows_another_hop(0));
        assert!(p.allows_another_hop(1_000_000));
    }

    #[test]
    fn staging_requirement_scales_with_view_rate() {
        let p = MigrationPolicy::single_hop();
        assert_eq!(p.required_staging_mb(3.0), 3.0);
        let mut p2 = p;
        p2.handoff_latency_secs = 2.5;
        assert_eq!(p2.required_staging_mb(3.0), 7.5);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AssignmentPolicy::LeastLoaded.name(), "least-loaded");
        assert_eq!(VictimSelection::MostStaged.name(), "most-staged");
    }
}
