//! The distribution controller's admission logic.
//!
//! Decision sequence for an arriving request (§3.1–§3.3):
//!
//! 1. **Direct placement.** Among servers holding a replica of the
//!    requested video, pick one whose minimum-flow admission test passes
//!    (fewest current requests, per the paper's assignment rule).
//! 2. **Dynamic request migration.** If every holder is full, look for one
//!    active stream on a holder that (a) has another replica of *its*
//!    video on a server with a free slot, (b) has not exhausted its hop
//!    budget, and (c) has staged enough client data to mask the hand-off.
//!    Migrate it, then admit the new request into the freed slot. The
//!    migration chain length is 1: we never migrate a second stream to
//!    make room for the first.
//! 3. **Rejection** otherwise. Rejected requests leave the system
//!    ("if this fails, then the request is not accepted", §3.2).

use crate::policy::{AssignmentPolicy, EvacuationPolicy, MigrationPolicy, VictimSelection};
use crate::stats::AdmissionStats;
use sct_cluster::{ReplicaMap, ServerId};
use sct_simcore::{Rng, SimTime};
use sct_transmission::{ServerEngine, Stream, StreamId, EPS_MB};
use serde::{Deserialize, Serialize};

/// Outcome of one admission decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Admission {
    /// Placed directly on `server`.
    Direct {
        /// The chosen replica holder.
        server: ServerId,
    },
    /// Placed on `server` after migrating `victim` from `server` to `to`.
    WithMigration {
        /// The holder that received the new request.
        server: ServerId,
        /// The stream that was moved away to make room.
        victim: StreamId,
        /// Where the victim now runs.
        to: ServerId,
    },
    /// Placed on `server` after a two-step migration chain (extension;
    /// the paper fixes the chain length at one).
    WithChain {
        /// The holder that received the new request.
        server: ServerId,
        /// First move: (stream, new server) — the stream that vacated
        /// `server`.
        first: (StreamId, ServerId),
        /// Second move: (stream, new server) — the stream that vacated
        /// the first move's destination.
        second: (StreamId, ServerId),
    },
    /// No capacity could be found or created.
    Rejected,
}

impl Admission {
    /// `true` unless the request was rejected.
    pub fn accepted(&self) -> bool {
        !matches!(self, Admission::Rejected)
    }

    /// The server the new stream was admitted on (`None` when rejected).
    /// The sharded loop routes the stream's later pause/resume events to
    /// this server's shard.
    pub fn server(&self) -> Option<ServerId> {
        match *self {
            Admission::Direct { server }
            | Admission::WithMigration { server, .. }
            | Admission::WithChain { server, .. } => Some(server),
            Admission::Rejected => None,
        }
    }

    /// The stream moves this decision caused, in execution order. This is
    /// the controller's half of the cross-shard channel: the sharded event
    /// loop filters these through the `ShardMap` and forwards the ones
    /// whose endpoints live on different shards.
    pub fn relocations(&self) -> Vec<Relocation> {
        match *self {
            Admission::Direct { .. } | Admission::Rejected => Vec::new(),
            Admission::WithMigration { server, victim, to } => vec![Relocation {
                stream: victim,
                from: server,
                to,
                kind: RelocationKind::Displacement,
            }],
            Admission::WithChain {
                server,
                first: (v1, t1),
                second: (v2, t2),
            } => vec![
                // The inner victim moves first (it opens t1's slot).
                Relocation {
                    stream: v2,
                    from: t1,
                    to: t2,
                    kind: RelocationKind::ChainInnerHop,
                },
                Relocation {
                    stream: v1,
                    from: server,
                    to: t1,
                    kind: RelocationKind::Displacement,
                },
            ],
        }
    }
}

/// Why a stream (or copy) crossed between servers — the four causal-edge
/// interactions the sharded loop synchronizes on. The taxonomy matches
/// the span layer's dependency edges one-for-one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RelocationKind {
    /// A DRM victim displaced at admission time to free a slot.
    Displacement,
    /// The inner (second) hop of a two-step migration chain.
    ChainInnerHop,
    /// A cluster-sourced replication copy streaming to its target.
    ReplicationCopy,
    /// A stream rescued (relocated or restarted) off a failed server.
    EvacuationRescue,
}

impl RelocationKind {
    /// The wire/display tag for the kind.
    pub fn name(self) -> &'static str {
        match self {
            RelocationKind::Displacement => "displacement",
            RelocationKind::ChainInnerHop => "chain_inner_hop",
            RelocationKind::ReplicationCopy => "replication_copy",
            RelocationKind::EvacuationRescue => "evacuation_rescue",
        }
    }
}

/// One stream moving `from → to` as a side effect of a controller
/// decision. When `from` and `to` live on different shards this is a
/// cross-shard event the loop must surface on its explicit channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relocation {
    /// The moving stream (or copy stream).
    pub stream: StreamId,
    /// The server the stream left.
    pub from: ServerId,
    /// The server the stream now runs on (or copies toward).
    pub to: ServerId,
    /// Which causal edge this move is.
    pub kind: RelocationKind,
}

/// A feasible two-step migration chain:
/// `(freed holder, (victim 1, its destination), (victim 2, its destination))`.
pub type ChainPlan = (ServerId, (StreamId, ServerId), (StreamId, ServerId));

/// Everything one [`Controller::evacuate`] pass did after a server
/// failure.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Evacuation {
    /// Servers that received streams (the caller must re-arm their
    /// wakes), in first-touch order.
    pub touched: Vec<ServerId>,
    /// Streams re-homed: `(stream, new server)`, in evacuation order.
    pub relocated: Vec<(StreamId, ServerId)>,
    /// Streams saved by the best-effort restart policy: re-homed with
    /// their staged workahead discarded, `(stream, new server)`, in
    /// evacuation order. Empty unless
    /// [`EvacuationPolicy::best_effort_restart`] is set.
    pub restarted: Vec<(StreamId, ServerId)>,
    /// Streams whose viewers lost service, in evacuation order.
    pub dropped: Vec<StreamId>,
}

impl Evacuation {
    /// The stream moves this evacuation performed (relocated first, then
    /// restarted, each in evacuation order), all tagged
    /// [`RelocationKind::EvacuationRescue`] and leaving `from` — the
    /// failed server. Feeds the sharded loop's cross-shard channel.
    pub fn relocations(&self, from: ServerId) -> Vec<Relocation> {
        self.relocated
            .iter()
            .chain(self.restarted.iter())
            .map(|&(stream, to)| Relocation {
                stream,
                from,
                to,
                kind: RelocationKind::EvacuationRescue,
            })
            .collect()
    }
}

/// The admission-control half of the distribution controller. Owns the
/// policies and counters; the server engines and replica map are owned by
/// the simulation and passed in per call.
#[derive(Clone, Debug)]
pub struct Controller {
    /// Assignment rule among eligible holders.
    pub assignment: AssignmentPolicy,
    /// Migration configuration.
    pub migration: MigrationPolicy,
    /// Failure-evacuation configuration.
    pub evacuation: EvacuationPolicy,
    /// Counters for the current trial.
    pub stats: AdmissionStats,
}

impl Controller {
    /// Creates a controller with the given policies and the strict
    /// (paper-faithful) evacuation policy.
    pub fn new(assignment: AssignmentPolicy, migration: MigrationPolicy) -> Self {
        Controller {
            assignment,
            migration,
            evacuation: EvacuationPolicy::default(),
            stats: AdmissionStats::default(),
        }
    }

    /// The paper's baseline: least-loaded assignment, no migration.
    pub fn paper_no_migration() -> Self {
        Self::new(AssignmentPolicy::LeastLoaded, MigrationPolicy::disabled())
    }

    /// The paper's main configuration: least-loaded assignment, migration
    /// with one hop per request.
    pub fn paper_single_hop() -> Self {
        Self::new(AssignmentPolicy::LeastLoaded, MigrationPolicy::single_hop())
    }

    /// Decides on `stream` at `now`. On acceptance the stream is handed to
    /// the chosen engine. Returns the outcome plus the servers whose
    /// schedules changed (the caller must re-arm their wake events).
    pub fn admit(
        &mut self,
        stream: Stream,
        engines: &mut [ServerEngine],
        map: &ReplicaMap,
        now: SimTime,
        rng: &mut Rng,
    ) -> (Admission, Vec<ServerId>) {
        self.stats.arrivals += 1;
        self.stats.requested_mb += stream.size_mb;
        let view_rate = stream.view_rate;
        let size_mb = stream.size_mb;

        // 1. Direct placement.
        let holders = map.holders(stream.video);
        if let Some(server) = self.pick_server(holders, view_rate, engines, rng) {
            engines[server.index()].admit(stream, now);
            self.stats.accepted_direct += 1;
            self.stats.accepted_mb += size_mb;
            return (Admission::Direct { server }, vec![server]);
        }

        // 2. Dynamic request migration (chain length 1).
        if self.migration.enabled {
            // Victim staging depends on wall time; bring holders up to date
            // before inspecting their streams.
            for &h in holders {
                engines[h.index()].advance_to(now);
            }
            if let Some((from, victim_id, to)) =
                self.find_migration(holders, engines, map, now, rng)
            {
                let mut victim = engines[from.index()]
                    .remove_stream(victim_id, now)
                    .expect("victim chosen from live stream list");
                victim.record_hop();
                engines[to.index()].admit(victim, now);
                engines[from.index()].admit(stream, now);
                self.stats.accepted_via_migration += 1;
                self.stats.accepted_mb += size_mb;
                return (
                    Admission::WithMigration {
                        server: from,
                        victim: victim_id,
                        to,
                    },
                    vec![from, to],
                );
            }
        }

        // 2b. Two-step chain (extension; off at the paper's chain length 1).
        if self.migration.enabled && self.migration.max_chain_length >= 2 {
            if let Some(chain) = self.find_chain2(holders, engines, map, now) {
                let (from, (v1, t1), (v2, t2)) = chain;
                // Move the inner victim first to open the slot on t1.
                engines[t1.index()].advance_to(now);
                let mut second = engines[t1.index()]
                    .remove_stream(v2, now)
                    .expect("chain victim vanished");
                second.record_hop();
                engines[t2.index()].admit(second, now);
                let mut first = engines[from.index()]
                    .remove_stream(v1, now)
                    .expect("chain victim vanished");
                first.record_hop();
                engines[t1.index()].admit(first, now);
                engines[from.index()].admit(stream, now);
                self.stats.accepted_via_migration += 1;
                self.stats.chain2_migrations += 1;
                self.stats.accepted_mb += size_mb;
                return (
                    Admission::WithChain {
                        server: from,
                        first: (v1, t1),
                        second: (v2, t2),
                    },
                    vec![from, t1, t2],
                );
            }
        }

        // 3. Rejection.
        self.stats.rejected += 1;
        (Admission::Rejected, Vec::new())
    }

    /// Depth-2 chain search: find victims `v1` on a holder `from` and `v2`
    /// on one of v1's replica servers `t1`, such that `v2` can move to a
    /// third server `t2`, freeing t1 for v1 and `from` for the arrival.
    /// Both victims must satisfy the hop and staging feasibility rules.
    /// First feasible chain in deterministic scan order wins.
    fn find_chain2(
        &self,
        holders: &[ServerId],
        engines: &[ServerEngine],
        map: &ReplicaMap,
        now: SimTime,
    ) -> Option<ChainPlan> {
        for &from in holders {
            // All holders of v1 candidates must be advanced for staging
            // reads; `admit` advanced the request's holders, but t1
            // candidates may be other servers. Use conservative feasibility
            // on un-advanced engines: staged_mb only grows between the
            // engine clock and `now` under minimum flow, so a stale read
            // can under-approximate, never over-approximate feasibility.
            for v1 in engines[from.index()].streams() {
                if v1.is_copy() || v1.is_finished() || !self.migration.allows_another_hop(v1.hops) {
                    continue;
                }
                let need1 = self.migration.required_staging_mb(v1.view_rate);
                if v1.staged_mb(now.max(engines[from.index()].clock())) + EPS_MB < need1 {
                    continue;
                }
                for &t1 in map.holders(v1.video) {
                    if t1 == from {
                        continue;
                    }
                    // t1 is full (depth-1 failed), so we need to evict v2.
                    for v2 in engines[t1.index()].streams() {
                        if v2.is_copy()
                            || v2.is_finished()
                            || !self.migration.allows_another_hop(v2.hops)
                        {
                            continue;
                        }
                        let t1_clock = engines[t1.index()].clock();
                        let need2 = self.migration.required_staging_mb(v2.view_rate);
                        if v2.staged_mb(now.max(t1_clock)) + EPS_MB < need2 {
                            continue;
                        }
                        let t2 = map
                            .holders(v2.video)
                            .iter()
                            .copied()
                            .filter(|&t| {
                                t != t1 && t != from && engines[t.index()].can_admit(v2.view_rate)
                            })
                            .min_by_key(|t| (engines[t.index()].active_count(), *t));
                        if let Some(t2) = t2 {
                            return Some((from, (v1.id, t1), (v2.id, t2)));
                        }
                    }
                }
            }
        }
        None
    }

    /// Emergency evacuation after a server failure (fault-tolerance
    /// extension of §3.1: "dynamic request migration can also be used to
    /// engineer a limited degree of fault tolerance into the server").
    ///
    /// Each stream taken off the failed server is re-homed on another
    /// *online* holder of its video with a free slot, provided migration
    /// is enabled and the client has staged enough data to mask the
    /// hand-off; otherwise the stream is dropped (the viewer loses
    /// service) — unless [`EvacuationPolicy::best_effort_restart`] is
    /// set, in which case a stream that cannot hand off seamlessly is
    /// restarted from its playback point on any capable holder (the
    /// staged workahead is discarded and retransmitted; the viewer
    /// rebuffers but keeps service). Emergency hops do not consume the
    /// per-request DRM hop budget — survival is not a scheduling
    /// optimisation.
    ///
    /// Returns the servers that received streams (the caller must re-arm
    /// their wakes) plus the per-stream fate of every evacuee.
    pub fn evacuate(
        &mut self,
        streams: Vec<Stream>,
        from: ServerId,
        engines: &mut [ServerEngine],
        map: &ReplicaMap,
        now: SimTime,
    ) -> Evacuation {
        let mut out = Evacuation::default();
        for stream in streams {
            if stream.is_copy() || stream.is_finished() {
                // Aborted copies are the ReplicationManager's business; a
                // finished stream's client already has all its data.
                continue;
            }
            let target = if self.migration.enabled {
                let need = self.migration.required_staging_mb(stream.view_rate);
                if stream.staged_mb(now) + EPS_MB < need {
                    None
                } else {
                    map.holders(stream.video)
                        .iter()
                        .copied()
                        .filter(|&t| t != from && engines[t.index()].can_admit(stream.view_rate))
                        .min_by_key(|t| (engines[t.index()].active_count(), *t))
                }
            } else {
                None
            };
            match target {
                Some(t) => {
                    let mut s = stream;
                    let id = s.id;
                    s.record_hop();
                    engines[t.index()].admit(s, now);
                    self.stats.relocated_on_failure += 1;
                    out.relocated.push((id, t));
                    if !out.touched.contains(&t) {
                        out.touched.push(t);
                    }
                }
                None => {
                    // No seamless hand-off. Best-effort restart: any
                    // online holder with a slot can serve the stream from
                    // its playback point — the staging requirement is
                    // moot once the viewer is rebuffering anyway.
                    let fallback = if self.evacuation.best_effort_restart {
                        map.holders(stream.video)
                            .iter()
                            .copied()
                            .filter(|&t| {
                                t != from && engines[t.index()].can_admit(stream.view_rate)
                            })
                            .min_by_key(|t| (engines[t.index()].active_count(), *t))
                    } else {
                        None
                    };
                    match fallback {
                        Some(t) => {
                            let mut s = stream;
                            let id = s.id;
                            s.restart_from_playback(now);
                            s.record_hop();
                            engines[t.index()].admit(s, now);
                            self.stats.restarted_on_failure += 1;
                            out.restarted.push((id, t));
                            if !out.touched.contains(&t) {
                                out.touched.push(t);
                            }
                        }
                        None => {
                            self.stats.dropped_on_failure += 1;
                            out.dropped.push(stream.id);
                        }
                    }
                }
            }
        }
        out
    }

    /// Differential-testing hook: the eligible direct-placement set the
    /// controller would consider for `video` right now — online holders
    /// with a free minimum-flow slot, in holder order. The oracle asserts
    /// that a `Direct` outcome names a member of this set and that a
    /// non-direct outcome implies the set was empty at decision time.
    #[cfg(feature = "differential")]
    pub fn direct_candidates(
        &self,
        video: sct_media::VideoId,
        view_rate: f64,
        engines: &[ServerEngine],
        map: &ReplicaMap,
    ) -> Vec<ServerId> {
        map.holders(video)
            .iter()
            .copied()
            .filter(|&s| engines[s.index()].can_admit(view_rate))
            .collect()
    }

    /// Differential-testing hook: the two-step chain the deterministic
    /// depth-2 search would commit to for `video` right now, if any.
    /// Computed on the same observable state `admit` would see, so the
    /// oracle asserts a `WithChain` outcome equals this plan exactly and
    /// that a rejection under a chain-2 policy implies no plan existed.
    #[cfg(feature = "differential")]
    pub fn chain2_plan(
        &self,
        video: sct_media::VideoId,
        engines: &[ServerEngine],
        map: &ReplicaMap,
        now: SimTime,
    ) -> Option<ChainPlan> {
        self.find_chain2(map.holders(video), engines, map, now)
    }

    /// Applies the assignment policy to the eligible holder set (the
    /// holders with a free minimum-flow slot). Filters the holders
    /// inline rather than collecting the eligible set — admission is on
    /// the hot path and the eligible `Vec` was its only allocation.
    fn pick_server(
        &self,
        holders: &[ServerId],
        view_rate: f64,
        engines: &[ServerEngine],
        rng: &mut Rng,
    ) -> Option<ServerId> {
        let eligible = || {
            holders
                .iter()
                .copied()
                .filter(|&s| engines[s.index()].can_admit(view_rate))
        };
        match self.assignment {
            AssignmentPolicy::LeastLoaded => {
                eligible().min_by_key(|&s| (engines[s.index()].active_count(), s))
            }
            AssignmentPolicy::MostLoaded => eligible()
                .max_by_key(|&s| (engines[s.index()].active_count(), std::cmp::Reverse(s))),
            AssignmentPolicy::FirstFit => eligible().next(), // holder lists are sorted
            AssignmentPolicy::Random => {
                // Same RNG draw as `Rng::choose` on the collected set:
                // one `below(n)` call, indexing in holder order.
                let n = eligible().count();
                (n > 0).then(|| eligible().nth(rng.below(n)).unwrap())
            }
        }
    }

    /// Searches for a feasible (victim, target) pair on the full holders.
    /// Holders are scanned in id order; within a holder the victim
    /// preference is [`VictimSelection`]; the target is the least-loaded
    /// eligible server.
    fn find_migration(
        &self,
        holders: &[ServerId],
        engines: &[ServerEngine],
        map: &ReplicaMap,
        now: SimTime,
        rng: &mut Rng,
    ) -> Option<(ServerId, StreamId, ServerId)> {
        let mut rng = rng.fork(0xD12A); // isolate search randomness
        for &from in holders {
            let engine = &engines[from.index()];
            // Candidate victims with their best target.
            struct Cand {
                id: StreamId,
                staged: f64,
                finish: SimTime,
                target: ServerId,
            }
            let mut cands: Vec<Cand> = Vec::new();
            for s in engine.streams() {
                if s.is_copy() || s.is_finished() {
                    // Copies are pinned; a finished-but-unreaped stream
                    // (its completion wake shares this timestamp) frees
                    // its slot in a moment anyway.
                    continue;
                }
                if !self.migration.allows_another_hop(s.hops) {
                    continue;
                }
                let need = self.migration.required_staging_mb(s.view_rate);
                let staged = s.staged_mb(now);
                if staged + EPS_MB < need {
                    continue;
                }
                let target = map
                    .holders(s.video)
                    .iter()
                    .copied()
                    .filter(|&t| t != from && engines[t.index()].can_admit(s.view_rate))
                    .min_by_key(|t| (engines[t.index()].active_count(), *t));
                if let Some(target) = target {
                    cands.push(Cand {
                        id: s.id,
                        staged,
                        finish: s.projected_finish(now),
                        target,
                    });
                }
            }
            if cands.is_empty() {
                continue;
            }
            let chosen = match self.migration.victim_selection {
                VictimSelection::MostStaged => cands
                    .iter()
                    .max_by(|a, b| a.staged.total_cmp(&b.staged).then(b.id.cmp(&a.id)))
                    .unwrap(),
                VictimSelection::EarliestFinish => cands
                    .iter()
                    .min_by(|a, b| a.finish.cmp(&b.finish).then(a.id.cmp(&b.id)))
                    .unwrap(),
                VictimSelection::FirstFeasible => &cands[0],
                VictimSelection::Random => &cands[rng.below(cands.len())],
            };
            return Some((from, chosen.id, chosen.target));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_media::{ClientProfile, VideoId};
    use sct_transmission::SchedulerKind;

    const VIEW: f64 = 3.0;

    fn mk_stream(id: u64, video: u32, size: f64, staging_cap: f64, now: SimTime) -> Stream {
        Stream::new(
            StreamId(id),
            VideoId(video),
            size,
            VIEW,
            ClientProfile::new(staging_cap, 30.0),
            now,
        )
    }

    /// Two servers, 12 Mb/s each (4 slots): v0 only on s0, v1 on both.
    fn two_server_setup() -> (Vec<ServerEngine>, ReplicaMap) {
        let engines = vec![
            ServerEngine::new(ServerId(0), 12.0, SchedulerKind::Eftf),
            ServerEngine::new(ServerId(1), 12.0, SchedulerKind::Eftf),
        ];
        let map =
            ReplicaMap::from_holders(2, vec![vec![ServerId(0)], vec![ServerId(0), ServerId(1)]]);
        (engines, map)
    }

    /// Fills s0 with four v1 streams; the earliest-admitted picked up
    /// workahead while the server still had spare bandwidth.
    fn fill_s0(engines: &mut [ServerEngine]) -> SimTime {
        let t0 = SimTime::ZERO;
        for i in 0..3 {
            engines[0].admit(mk_stream(i, 1, 3000.0, 1e6, t0), t0);
        }
        // 3 streams × 3 = 9 of 12 → 3 Mb/s of workahead accrues for 10 s.
        let t1 = SimTime::from_secs(10.0);
        engines[0].advance_to(t1);
        engines[0].reschedule(t1);
        engines[0].admit(mk_stream(3, 1, 3000.0, 1e6, t1), t1);
        assert!(!engines[0].can_admit(VIEW), "s0 must now be full");
        t1 + 1.0
    }

    #[test]
    fn direct_placement_prefers_least_loaded() {
        let (mut engines, map) = two_server_setup();
        let mut rng = Rng::new(1);
        let mut c = Controller::paper_no_migration();
        let now = SimTime::ZERO;
        // Pre-load s0 with one stream of v1.
        engines[0].admit(mk_stream(100, 1, 3000.0, 0.0, now), now);
        let (adm, touched) = c.admit(
            mk_stream(101, 1, 3000.0, 0.0, now),
            &mut engines,
            &map,
            now,
            &mut rng,
        );
        assert_eq!(
            adm,
            Admission::Direct {
                server: ServerId(1)
            }
        );
        assert_eq!(touched, vec![ServerId(1)]);
        assert_eq!(engines[1].active_count(), 1);
        c.stats.check();
        assert_eq!(c.stats.accepted_direct, 1);
    }

    #[test]
    fn rejection_without_migration_when_holders_full() {
        let (mut engines, map) = two_server_setup();
        let mut rng = Rng::new(2);
        let mut c = Controller::paper_no_migration();
        let now = fill_s0(&mut engines);
        let (adm, touched) = c.admit(
            mk_stream(50, 0, 3000.0, 1e6, now),
            &mut engines,
            &map,
            now,
            &mut rng,
        );
        assert_eq!(adm, Admission::Rejected);
        assert!(touched.is_empty());
        assert_eq!(c.stats.rejected, 1);
        c.stats.check();
    }

    #[test]
    fn migration_frees_a_slot() {
        let (mut engines, map) = two_server_setup();
        let mut rng = Rng::new(3);
        let mut c = Controller::paper_single_hop();
        let now = fill_s0(&mut engines);
        let (adm, touched) = c.admit(
            mk_stream(50, 0, 3000.0, 1e6, now),
            &mut engines,
            &map,
            now,
            &mut rng,
        );
        match adm {
            Admission::WithMigration { server, victim, to } => {
                assert_eq!(server, ServerId(0));
                assert_eq!(to, ServerId(1));
                // MostStaged: stream 0 monopolised the early workahead.
                assert_eq!(victim, StreamId(0));
            }
            other => panic!("expected migration, got {other:?}"),
        }
        assert_eq!(touched, vec![ServerId(0), ServerId(1)]);
        assert_eq!(engines[0].active_count(), 4, "new stream took the slot");
        assert_eq!(engines[1].active_count(), 1, "victim moved");
        assert_eq!(engines[1].streams()[0].hops, 1);
        assert_eq!(c.stats.accepted_via_migration, 1);
        c.stats.check();
    }

    #[test]
    fn source_failure_after_migration_keeps_ledgers_consistent() {
        // DRM moves a victim s0 → s1, then s0 fails. The migrated stream
        // keeps playing from s1, a stale removal handle on the dead server
        // must be a no-op (no second decrement of the already-zeroed
        // commitment ledger), and after repair s0 admits exactly its slot
        // count again.
        let (mut engines, map) = two_server_setup();
        let mut rng = Rng::new(5);
        let mut c = Controller::new(
            AssignmentPolicy::LeastLoaded,
            MigrationPolicy {
                handoff_latency_secs: 0.0,
                ..MigrationPolicy::single_hop()
            },
        );
        let now = fill_s0(&mut engines);
        let (adm, _) = c.admit(
            mk_stream(50, 0, 3000.0, 1e6, now),
            &mut engines,
            &map,
            now,
            &mut rng,
        );
        let victim = match adm {
            Admission::WithMigration { victim, .. } => victim,
            other => panic!("expected migration, got {other:?}"),
        };

        let t_fail = now + 5.0;
        engines[1].advance_to(t_fail);
        engines[1].reschedule(t_fail);
        let taken = engines[0].fail(t_fail);
        assert_eq!(taken.len(), 4, "three v1 streams plus the v0 arrival");
        // Stale handle to the migrated victim on the dead server: no-op.
        assert!(engines[0].remove_stream(victim, t_fail).is_none());

        let evac = c.evacuate(taken, ServerId(0), &mut engines, &map, t_fail);
        // The v1 streams relocate into s1's three free slots; the v0
        // arrival has no other holder and is dropped.
        assert_eq!(evac.touched, vec![ServerId(1)]);
        assert_eq!(evac.relocated.len(), 3);
        assert_eq!(evac.dropped.len(), 1);
        assert_eq!(c.stats.relocated_on_failure, 3);
        assert_eq!(c.stats.dropped_on_failure, 1);
        assert_eq!(engines[1].active_count(), 4);
        assert!(!engines[1].can_admit(VIEW));
        engines[1].advance_to(t_fail);
        engines[1].reschedule(t_fail);
        engines[1].check_invariants();

        let t_up = t_fail + 60.0;
        engines[0].repair(t_up);
        let mut re_admitted = 0;
        for i in 200..210 {
            if engines[0].can_admit(VIEW) {
                engines[0].admit(mk_stream(i, 1, 300.0, 0.0, t_up), t_up);
                re_admitted += 1;
            }
        }
        assert_eq!(re_admitted, 4, "ledger must not drift across fail/repair");
        engines[0].check_invariants();
        c.stats.check();
    }

    #[test]
    fn migration_requires_staged_data() {
        let (mut engines, map) = two_server_setup();
        let mut rng = Rng::new(4);
        let mut c = Controller::paper_single_hop();
        // Fill s0 with 4 zero-staging streams: no hand-off possible.
        let now = SimTime::ZERO;
        for i in 0..4 {
            engines[0].admit(mk_stream(i, 1, 3000.0, 0.0, now), now);
        }
        let (adm, _) = c.admit(
            mk_stream(50, 0, 3000.0, 1e6, now),
            &mut engines,
            &map,
            now,
            &mut rng,
        );
        assert_eq!(adm, Admission::Rejected);
    }

    #[test]
    fn migration_respects_hop_budget() {
        let (mut engines, map) = two_server_setup();
        let mut rng = Rng::new(5);
        let mut c = Controller::paper_single_hop();
        let now = fill_s0(&mut engines);
        // First migration consumes stream 0's hop budget.
        let (adm1, _) = c.admit(
            mk_stream(50, 0, 3000.0, 1e6, now),
            &mut engines,
            &map,
            now,
            &mut rng,
        );
        assert!(matches!(adm1, Admission::WithMigration { .. }));
        // Move the migrated stream's replacement context: s0 again full,
        // s1 has 3 free slots; remaining s0 streams (1, 2, new 50) —
        // streams 1 and 2 still have hop budget but little staged data
        // (stream 0 had monopolised the workahead). Give the system time
        // to stage more, then expect a second migration of a *different*
        // stream.
        let later = now + 100.0;
        engines[0].advance_to(later);
        engines[0].reschedule(later);
        engines[1].advance_to(later);
        engines[1].reschedule(later);
        let (adm2, _) = c.admit(
            mk_stream(51, 0, 3000.0, 1e6, later),
            &mut engines,
            &map,
            later,
            &mut rng,
        );
        match adm2 {
            Admission::WithMigration { victim, .. } => {
                assert_ne!(victim, StreamId(0), "hop budget must exclude stream 0");
            }
            Admission::Rejected => {} // acceptable if nothing staged enough
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unlimited_hops_can_remigrate() {
        let policy = MigrationPolicy::unlimited_hops();
        assert!(policy.allows_another_hop(3));
        let c = Controller::new(AssignmentPolicy::LeastLoaded, policy);
        assert!(c.migration.enabled);
    }

    #[test]
    fn migration_targets_least_loaded_server() {
        // Three servers; v1 replicated everywhere; v0 only on s0.
        let mut engines = vec![
            ServerEngine::new(ServerId(0), 12.0, SchedulerKind::Eftf),
            ServerEngine::new(ServerId(1), 12.0, SchedulerKind::Eftf),
            ServerEngine::new(ServerId(2), 12.0, SchedulerKind::Eftf),
        ];
        let map = ReplicaMap::from_holders(
            3,
            vec![
                vec![ServerId(0)],
                vec![ServerId(0), ServerId(1), ServerId(2)],
            ],
        );
        let now = fill_s0(&mut engines);
        // Load s1 with one stream so s2 is the least loaded.
        engines[1].admit(mk_stream(90, 1, 3000.0, 0.0, now), now);
        let mut rng = Rng::new(6);
        let mut c = Controller::paper_single_hop();
        let (adm, _) = c.admit(
            mk_stream(50, 0, 3000.0, 1e6, now),
            &mut engines,
            &map,
            now,
            &mut rng,
        );
        match adm {
            Admission::WithMigration { to, .. } => assert_eq!(to, ServerId(2)),
            other => panic!("expected migration, got {other:?}"),
        }
    }

    #[test]
    fn assignment_policy_variants_differ() {
        let (mut engines, map) = two_server_setup();
        let now = SimTime::ZERO;
        engines[0].admit(mk_stream(100, 1, 3000.0, 0.0, now), now);
        let mut rng = Rng::new(7);
        // MostLoaded should pick s0 (1 active) over s1 (0 active).
        let mut c = Controller::new(AssignmentPolicy::MostLoaded, MigrationPolicy::disabled());
        let (adm, _) = c.admit(
            mk_stream(101, 1, 3000.0, 0.0, now),
            &mut engines,
            &map,
            now,
            &mut rng,
        );
        assert_eq!(
            adm,
            Admission::Direct {
                server: ServerId(0)
            }
        );
        // FirstFit picks the lowest id among eligible.
        let mut c = Controller::new(AssignmentPolicy::FirstFit, MigrationPolicy::disabled());
        let (adm, _) = c.admit(
            mk_stream(102, 1, 3000.0, 0.0, now),
            &mut engines,
            &map,
            now,
            &mut rng,
        );
        assert_eq!(
            adm,
            Admission::Direct {
                server: ServerId(0)
            }
        );
    }

    #[test]
    fn evacuation_relocates_feasible_streams() {
        let (mut engines, map) = two_server_setup();
        let now = SimTime::ZERO;
        // Two v1 streams on s0 with staged data, one with none.
        engines[0].admit(mk_stream(1, 1, 3000.0, 1e6, now), now);
        engines[0].admit(mk_stream(2, 1, 3000.0, 1e6, now), now);
        engines[0].admit(mk_stream(3, 1, 3000.0, 0.0, now), now);
        let t = SimTime::from_secs(10.0);
        let taken = engines[0].fail(t);
        assert_eq!(taken.len(), 3);
        let mut c = Controller::paper_single_hop(); // latency 1 s
        let evac = c.evacuate(taken, ServerId(0), &mut engines, &map, t);
        assert_eq!(evac.touched, vec![ServerId(1)]);
        assert_eq!(evac.relocated, vec![(StreamId(1), ServerId(1))]);
        assert_eq!(evac.dropped, vec![StreamId(2), StreamId(3)]);
        // EFTF concentrated all spare bandwidth on stream 1 (earliest
        // projected finish by id tie-break), so only it staged data;
        // streams 2 (empty buffer) and 3 (0-capacity buffer) cannot mask
        // a 1 s hand-off and are dropped.
        assert_eq!(c.stats.relocated_on_failure, 1);
        assert_eq!(c.stats.dropped_on_failure, 2);
        assert_eq!(engines[1].active_count(), 1);
        assert!(engines[1].streams().iter().all(|s| s.hops == 1));
    }

    #[test]
    fn evacuation_without_migration_drops_everything() {
        let (mut engines, map) = two_server_setup();
        let now = SimTime::ZERO;
        engines[0].admit(mk_stream(1, 1, 3000.0, 1e6, now), now);
        let t = SimTime::from_secs(5.0);
        let taken = engines[0].fail(t);
        let mut c = Controller::paper_no_migration();
        let evac = c.evacuate(taken, ServerId(0), &mut engines, &map, t);
        assert!(evac.touched.is_empty());
        assert_eq!(evac.dropped, vec![StreamId(1)]);
        assert_eq!(c.stats.dropped_on_failure, 1);
        assert_eq!(engines[1].active_count(), 0);
    }

    #[test]
    fn evacuation_policy_strict_drops_where_best_effort_restarts() {
        // Identical setup under both policies: one v1 stream on s0 with
        // workahead staged, migration disabled — a seamless hand-off is
        // impossible, but s1 also holds v1 and has free slots.
        for best_effort in [false, true] {
            let (mut engines, map) = two_server_setup();
            let now = SimTime::ZERO;
            engines[0].admit(mk_stream(1, 1, 3000.0, 1e6, now), now);
            let t = SimTime::from_secs(5.0);
            let taken = engines[0].fail(t);
            let mut c = Controller::paper_no_migration();
            c.evacuation = if best_effort {
                EvacuationPolicy::best_effort()
            } else {
                EvacuationPolicy::strict()
            };
            let evac = c.evacuate(taken, ServerId(0), &mut engines, &map, t);
            if best_effort {
                assert_eq!(evac.restarted, vec![(StreamId(1), ServerId(1))]);
                assert!(evac.dropped.is_empty());
                assert_eq!(evac.touched, vec![ServerId(1)]);
                assert_eq!(c.stats.restarted_on_failure, 1);
                assert_eq!(c.stats.dropped_on_failure, 0);
                // The restart rewinds the data to the playback point:
                // 5 s viewed at 3 Mb/s = 15 Mb; the workahead the stream
                // had staged beyond that (it was receiving the full
                // 12 Mb/s) is flushed.
                let s = &engines[1].streams()[0];
                assert!((s.sent_mb() - 15.0).abs() < 1e-9, "{}", s.sent_mb());
                assert_eq!(s.hops, 1);
            } else {
                assert_eq!(evac.dropped, vec![StreamId(1)]);
                assert!(evac.restarted.is_empty());
                assert!(evac.touched.is_empty());
                assert_eq!(c.stats.dropped_on_failure, 1);
                assert_eq!(c.stats.restarted_on_failure, 0);
                assert_eq!(engines[1].active_count(), 0);
            }
        }
    }

    #[test]
    fn evacuation_respects_target_capacity() {
        // s1 already full: evacuated v1 streams have nowhere to go.
        let (mut engines, map) = two_server_setup();
        let now = SimTime::ZERO;
        for i in 0..4 {
            engines[1].admit(mk_stream(100 + i, 1, 3000.0, 0.0, now), now);
        }
        engines[0].admit(mk_stream(1, 1, 3000.0, 1e6, now), now);
        let t = SimTime::from_secs(10.0);
        let taken = engines[0].fail(t);
        let mut c = Controller::paper_single_hop();
        let evac = c.evacuate(taken, ServerId(0), &mut engines, &map, t);
        assert!(evac.touched.is_empty());
        assert_eq!(c.stats.dropped_on_failure, 1);
        assert_eq!(engines[1].active_count(), 4);
    }

    /// Three servers: v0 only on s0, v1 on {s0,s1}, v2 on {s1,s2}.
    /// Admitting v0 requires a two-step chain: v2 stream s1→s2, then v1
    /// stream s0→s1.
    fn chain_setup() -> (Vec<ServerEngine>, ReplicaMap, SimTime) {
        let mut engines = vec![
            ServerEngine::new(ServerId(0), 12.0, SchedulerKind::Eftf),
            ServerEngine::new(ServerId(1), 12.0, SchedulerKind::Eftf),
            ServerEngine::new(ServerId(2), 12.0, SchedulerKind::Eftf),
        ];
        let map = ReplicaMap::from_holders(
            3,
            vec![
                vec![ServerId(0)],
                vec![ServerId(0), ServerId(1)],
                vec![ServerId(1), ServerId(2)],
            ],
        );
        let t0 = SimTime::ZERO;
        for i in 0..4 {
            engines[0].admit(mk_stream(i, 1, 3000.0, 1e6, t0), t0);
            engines[1].admit(mk_stream(10 + i, 2, 3000.0, 1e6, t0), t0);
        }
        let now = SimTime::from_secs(10.0);
        for e in engines.iter_mut() {
            e.advance_to(now);
            e.reschedule(now);
        }
        (engines, map, now)
    }

    #[test]
    fn chain2_succeeds_where_chain1_fails() {
        let (mut engines, map, now) = chain_setup();
        let mut rng = Rng::new(8);
        // Chain length 1: rejected (s1 is full, no direct victim target).
        let mut c1 = Controller::new(
            AssignmentPolicy::LeastLoaded,
            MigrationPolicy {
                handoff_latency_secs: 0.0,
                ..MigrationPolicy::single_hop()
            },
        );
        let (adm, _) = c1.admit(
            mk_stream(50, 0, 3000.0, 1e6, now),
            &mut engines,
            &map,
            now,
            &mut rng,
        );
        assert_eq!(adm, Admission::Rejected);

        // Chain length 2: the two-step chain opens the slot.
        let mut c2 = Controller::new(
            AssignmentPolicy::LeastLoaded,
            MigrationPolicy {
                handoff_latency_secs: 0.0,
                ..MigrationPolicy::chain2()
            },
        );
        let (adm, touched) = c2.admit(
            mk_stream(51, 0, 3000.0, 1e6, now),
            &mut engines,
            &map,
            now,
            &mut rng,
        );
        match adm {
            Admission::WithChain {
                server,
                first,
                second,
            } => {
                assert_eq!(server, ServerId(0));
                assert_eq!(first.1, ServerId(1));
                assert_eq!(second.1, ServerId(2));
            }
            other => panic!("expected chain, got {other:?}"),
        }
        assert_eq!(touched, vec![ServerId(0), ServerId(1), ServerId(2)]);
        assert_eq!(engines[0].active_count(), 4);
        assert_eq!(engines[1].active_count(), 4);
        assert_eq!(engines[2].active_count(), 1);
        assert_eq!(c2.stats.chain2_migrations, 1);
        assert_eq!(c2.stats.accepted_via_migration, 1);
        c2.stats.check();
        for e in &engines {
            e.check_invariants();
        }
    }

    #[test]
    fn chain2_respects_hop_budgets() {
        let (mut engines, map, now) = chain_setup();
        // Exhaust every stream\'s hop budget up front.
        let ids: Vec<StreamId> = engines
            .iter()
            .flat_map(|e| e.streams().iter().map(|s| s.id))
            .collect();
        for e in engines.iter_mut() {
            for id in &ids {
                if let Some(mut s) = e.remove_stream(*id, now) {
                    s.record_hop();
                    e.admit(s, now);
                }
            }
        }
        let mut rng = Rng::new(9);
        let mut c = Controller::new(
            AssignmentPolicy::LeastLoaded,
            MigrationPolicy {
                handoff_latency_secs: 0.0,
                ..MigrationPolicy::chain2()
            },
        );
        let (adm, _) = c.admit(
            mk_stream(52, 0, 3000.0, 1e6, now),
            &mut engines,
            &map,
            now,
            &mut rng,
        );
        assert_eq!(
            adm,
            Admission::Rejected,
            "spent hop budgets must block chains"
        );
    }

    #[test]
    fn accepted_flag() {
        assert!(Admission::Direct {
            server: ServerId(0)
        }
        .accepted());
        assert!(!Admission::Rejected.accepted());
    }
}
