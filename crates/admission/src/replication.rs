//! Dynamic replication (extension).
//!
//! §3.1 contrasts DRM with the heavier alternative: "more resource
//! intensive solutions perform dynamic replication of the requested object
//! on another server where resources can be made available". This module
//! implements that alternative so the two can be compared head-to-head
//! (and composed).
//!
//! Mechanics: when a request is rejected, the [`ReplicationManager`] may
//! start copying the video from a holder to a server that has disk space.
//! The copy is a real [`Stream`] (kind [`sct_transmission::StreamKind::
//! ReplicaCopy`]) admitted into the source engine at a fixed copy rate —
//! it occupies genuine slots and genuine bandwidth, which is exactly the
//! cost the paper alludes to. When the copy stream finishes, the replica
//! map gains the new holder and future requests can land there.

use crate::policy::AssignmentPolicy;
use sct_cluster::{ClusterSpec, ReplicaMap, ServerId};
use sct_media::VideoId;
use sct_simcore::SimTime;
use sct_transmission::{ServerEngine, Stream, StreamId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Where replica copies stream from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CopySource {
    /// From the cluster's tertiary storage (§2: "the video server cluster
    /// includes tertiary storage"). Costs no data-server bandwidth; the
    /// tertiary drive's bandwidth is modelled by `max_concurrent ×
    /// copy_rate`. Always available — the right choice at 100 % offered
    /// load, where replica holders are saturated by definition.
    Tertiary,
    /// From a replica-holding data server, as a real minimum-flow stream:
    /// consumes genuine slots and bandwidth on the source. Only fires when
    /// some holder has spare capacity, so at full load it rarely can —
    /// which is itself an instructive data point.
    Cluster,
}

/// Dynamic replication knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplicationSpec {
    /// Bandwidth of one copy transfer, Mb/s.
    pub copy_rate_mbps: f64,
    /// Maximum copies in flight cluster-wide.
    pub max_concurrent: usize,
    /// Per-video cooldown: after a copy of a video starts, no further copy
    /// of the *same* video may start for this many seconds (prevents
    /// replication storms while demand spikes).
    pub cooldown_secs: f64,
    /// Copy source model.
    pub source: CopySource,
}

impl ReplicationSpec {
    /// A sensible default: tertiary-sourced copies at 10× the 3 Mb/s view
    /// rate, at most two in flight, ten-minute per-video cooldown.
    pub fn default_paper_scale() -> Self {
        ReplicationSpec {
            copy_rate_mbps: 30.0,
            max_concurrent: 2,
            cooldown_secs: 600.0,
            source: CopySource::Tertiary,
        }
    }

    /// The cluster-sourced variant of [`default_paper_scale`]
    /// (bandwidth-consuming copies).
    ///
    /// [`default_paper_scale`]: ReplicationSpec::default_paper_scale
    pub fn cluster_sourced() -> Self {
        ReplicationSpec {
            source: CopySource::Cluster,
            ..Self::default_paper_scale()
        }
    }
}

/// How a copy was launched; tells the simulation what to schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CopyLaunch {
    /// A copy stream was admitted into `source`'s engine; completion
    /// arrives via the engine's reap path.
    FromServer {
        /// The data server transmitting the copy.
        source: ServerId,
        /// The copy stream's id (matches the eventual reaped stream).
        stream: StreamId,
    },
    /// A tertiary-storage copy; the simulation must schedule completion
    /// (`token`) after `done_in_secs`.
    FromTertiary {
        /// Identifier to hand back to
        /// [`ReplicationManager::on_copy_finished`].
        token: StreamId,
        /// Transfer time (size ÷ copy rate).
        done_in_secs: f64,
    },
}

/// A copy in flight.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PendingCopy {
    /// The copy stream's id (lives on `source`).
    pub stream: StreamId,
    /// Video being replicated.
    pub video: VideoId,
    /// Server transmitting the copy (`None` for tertiary-sourced copies).
    pub source: Option<ServerId>,
    /// Server that will hold the new replica.
    pub target: ServerId,
    /// Object size (charged to the target's disk on completion).
    pub size_mb: f64,
}

impl PendingCopy {
    /// The source→target move this copy represents, as a
    /// [`crate::controller::Relocation`] for the sharded loop's
    /// cross-shard channel. `None` for tertiary-sourced copies — tertiary
    /// storage sits outside the cluster, so no shard boundary is crossed.
    pub fn relocation(&self) -> Option<crate::controller::Relocation> {
        Some(crate::controller::Relocation {
            stream: self.stream,
            from: self.source?,
            to: self.target,
            kind: crate::controller::RelocationKind::ReplicationCopy,
        })
    }
}

/// Counters for replication activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplicationStats {
    /// Copies started.
    pub copies_started: u64,
    /// Copies that completed and produced a replica.
    pub replicas_created: u64,
    /// Copies aborted by a source-server failure.
    pub copies_aborted: u64,
    /// Megabits of replication traffic transmitted (completed copies,
    /// both sources).
    pub replication_mb: f64,
    /// The subset of `replication_mb` that consumed *data-server*
    /// bandwidth (cluster-sourced copies); tertiary copies ride the
    /// tertiary drive instead.
    pub cluster_copy_mb: f64,
}

/// Orchestrates dynamic replication. Owned by the simulation next to the
/// admission [`crate::Controller`].
#[derive(Clone, Debug)]
pub struct ReplicationManager {
    spec: ReplicationSpec,
    pending: Vec<PendingCopy>,
    /// Earliest time another copy of each video may start.
    cooldown_until: HashMap<VideoId, SimTime>,
    /// Stats for the trial.
    pub stats: ReplicationStats,
}

impl ReplicationManager {
    /// Creates a manager with the given knobs.
    pub fn new(spec: ReplicationSpec) -> Self {
        assert!(spec.copy_rate_mbps > 0.0);
        assert!(spec.max_concurrent > 0);
        assert!(spec.cooldown_secs >= 0.0);
        ReplicationManager {
            spec,
            pending: Vec::new(),
            cooldown_until: HashMap::new(),
            stats: ReplicationStats::default(),
        }
    }

    /// Copies currently in flight.
    pub fn in_flight(&self) -> &[PendingCopy] {
        &self.pending
    }

    /// Reacts to a rejected request for `video`: possibly starts one
    /// replica copy. Returns how the copy was launched, or `None` if no
    /// copy started.
    ///
    /// Target: the least-loaded online non-holder with disk space. For
    /// cluster-sourced copies the source is the least-loaded holder with a
    /// spare slot for the copy stream. Gated by the concurrency cap, the
    /// per-video cooldown, and a no-duplicate rule (one copy of a video at
    /// a time).
    #[allow(clippy::too_many_arguments)]
    pub fn maybe_replicate(
        &mut self,
        video: VideoId,
        size_mb: f64,
        next_stream_id: &mut u64,
        engines: &mut [ServerEngine],
        map: &ReplicaMap,
        cluster: &ClusterSpec,
        now: SimTime,
    ) -> Option<CopyLaunch> {
        if self.pending.len() >= self.spec.max_concurrent {
            return None;
        }
        if self.pending.iter().any(|p| p.video == video) {
            return None;
        }
        if let Some(&until) = self.cooldown_until.get(&video) {
            if now < until {
                return None;
            }
        }
        // Target: an online non-holder with disk space, least loaded so the
        // new replica is immediately useful.
        let target = cluster
            .ids()
            .filter(|&t| {
                !map.holds(t, video)
                    && engines[t.index()].is_online()
                    && map.free_disk_mb(t, cluster.server(t).disk_capacity_mb) >= size_mb
            })
            .min_by_key(|&t| (engines[t.index()].active_count(), t))?;

        let launch = match self.spec.source {
            CopySource::Cluster => {
                // Source: a holder able to carve out the copy rate.
                let source = map
                    .holders(video)
                    .iter()
                    .copied()
                    .filter(|&s| engines[s.index()].can_admit(self.spec.copy_rate_mbps))
                    .min_by_key(|s| (engines[s.index()].active_count(), *s))?;
                let id = StreamId(*next_stream_id);
                *next_stream_id += 1;
                let copy = Stream::replica_copy(id, video, size_mb, self.spec.copy_rate_mbps, now);
                engines[source.index()].admit(copy, now);
                self.pending.push(PendingCopy {
                    stream: id,
                    video,
                    source: Some(source),
                    target,
                    size_mb,
                });
                CopyLaunch::FromServer { source, stream: id }
            }
            CopySource::Tertiary => {
                let id = StreamId(*next_stream_id);
                *next_stream_id += 1;
                self.pending.push(PendingCopy {
                    stream: id,
                    video,
                    source: None,
                    target,
                    size_mb,
                });
                CopyLaunch::FromTertiary {
                    token: id,
                    done_in_secs: size_mb / self.spec.copy_rate_mbps,
                }
            }
        };
        self.cooldown_until
            .insert(video, now + self.spec.cooldown_secs);
        self.stats.copies_started += 1;
        Some(launch)
    }

    /// Handles a finished copy stream: registers the new replica. Returns
    /// the completed record, or `None` if `stream` was not a known copy.
    pub fn on_copy_finished(
        &mut self,
        stream: StreamId,
        map: &mut ReplicaMap,
    ) -> Option<PendingCopy> {
        let idx = self.pending.iter().position(|p| p.stream == stream)?;
        let copy = self.pending.swap_remove(idx);
        map.add_replica(copy.video, copy.target, copy.size_mb);
        self.stats.replicas_created += 1;
        self.stats.replication_mb += copy.size_mb;
        if copy.source.is_some() {
            self.stats.cluster_copy_mb += copy.size_mb;
        }
        Some(copy)
    }

    /// Aborts copies whose source or target just failed. Returns how many
    /// were cancelled. (Tertiary-sourced copies only die with their
    /// target.)
    pub fn on_server_failed(&mut self, server: ServerId) -> usize {
        let before = self.pending.len();
        self.pending
            .retain(|p| p.source != Some(server) && p.target != server);
        let aborted = before - self.pending.len();
        self.stats.copies_aborted += aborted as u64;
        aborted
    }

    /// The assignment policy has no influence here; kept as an explicit
    /// reminder that replication targets are chosen least-loaded regardless
    /// of the request-assignment ablation in use.
    pub fn target_policy() -> AssignmentPolicy {
        AssignmentPolicy::LeastLoaded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_cluster::PlacementStrategy;
    use sct_media::Catalog;
    use sct_simcore::Rng;
    use sct_transmission::SchedulerKind;

    fn setup() -> (Catalog, ClusterSpec, ReplicaMap, Vec<ServerEngine>) {
        let mut rng = Rng::new(9);
        let catalog = Catalog::uniform_lengths(10, 600.0, 601.0, 3.0, &mut rng);
        let cluster = ClusterSpec::homogeneous(3, 90.0, 100.0);
        let map = PlacementStrategy::Even { avg_copies: 1.0 }
            .place(&catalog, &cluster, &[0.1; 10], &mut rng);
        let engines = cluster
            .ids()
            .map(|id| ServerEngine::new(id, 90.0, SchedulerKind::Eftf))
            .collect();
        (catalog, cluster, map, engines)
    }

    #[test]
    fn cluster_sourced_copy_starts_and_completes() {
        let (catalog, cluster, mut map, mut engines) = setup();
        let mut mgr = ReplicationManager::new(ReplicationSpec {
            copy_rate_mbps: 30.0,
            max_concurrent: 2,
            cooldown_secs: 60.0,
            source: CopySource::Cluster,
        });
        let video = VideoId(0);
        let size = catalog.video(video).size_mb();
        let before = map.copies_of(video);
        let mut next_id = 1000;
        let now = SimTime::ZERO;
        let launch = mgr
            .maybe_replicate(video, size, &mut next_id, &mut engines, &map, &cluster, now)
            .expect("copy should start");
        let CopyLaunch::FromServer { source, stream } = launch else {
            panic!("expected a cluster-sourced copy");
        };
        assert_eq!(stream, StreamId(1000));
        assert_eq!(mgr.in_flight().len(), 1);
        assert_eq!(next_id, 1001);
        let e = &mut engines[source.index()];
        assert_eq!(e.active_count(), 1);
        assert!(e.streams()[0].is_copy());
        // Drive the copy to completion: 1800.x Mb at 30 Mb/s ≈ 60 s.
        let done_at = e.next_event_after(now).unwrap().0;
        assert!((done_at.as_secs() - size / 30.0).abs() < 1e-9);
        e.advance_to(done_at);
        let finished = e.reap_finished(done_at);
        assert_eq!(finished.len(), 1);
        let rec = mgr.on_copy_finished(finished[0].id, &mut map).unwrap();
        assert_eq!(rec.video, video);
        assert_eq!(map.copies_of(video), before + 1);
        assert!(map.holds(rec.target, video));
        assert_eq!(mgr.stats.replicas_created, 1);
        assert!((mgr.stats.replication_mb - size).abs() < 1e-9);
        assert!(mgr.in_flight().is_empty());
    }

    #[test]
    fn tertiary_copy_needs_no_source_capacity() {
        let (catalog, cluster, mut map, mut engines) = setup();
        // Saturate every server so no cluster source could possibly fit.
        let now = SimTime::ZERO;
        for e in engines.iter_mut() {
            let mut sid = 500 + e.id().0 as u64 * 100;
            while e.can_admit(3.0) {
                e.admit(
                    Stream::new(
                        StreamId(sid),
                        VideoId(9),
                        9000.0,
                        3.0,
                        sct_media::ClientProfile::new(0.0, 30.0),
                        now,
                    ),
                    now,
                );
                sid += 1;
            }
        }
        let mut mgr = ReplicationManager::new(ReplicationSpec::default_paper_scale());
        let video = VideoId(0);
        let size = catalog.video(video).size_mb();
        let mut next_id = 0;
        let launch = mgr
            .maybe_replicate(video, size, &mut next_id, &mut engines, &map, &cluster, now)
            .expect("tertiary copies start even under saturation");
        let CopyLaunch::FromTertiary {
            token,
            done_in_secs,
        } = launch
        else {
            panic!("expected a tertiary copy");
        };
        assert!((done_in_secs - size / 30.0).abs() < 1e-9);
        let rec = mgr.on_copy_finished(token, &mut map).unwrap();
        assert!(map.holds(rec.target, video));
        assert_eq!(mgr.stats.replicas_created, 1);
    }

    #[test]
    fn cooldown_and_duplicate_guards() {
        let (catalog, cluster, map, mut engines) = setup();
        let mut mgr = ReplicationManager::new(ReplicationSpec {
            copy_rate_mbps: 30.0,
            max_concurrent: 4,
            cooldown_secs: 600.0,
            source: CopySource::Tertiary,
        });
        let video = VideoId(1);
        let size = catalog.video(video).size_mb();
        let mut next_id = 0;
        let now = SimTime::ZERO;
        assert!(mgr
            .maybe_replicate(video, size, &mut next_id, &mut engines, &map, &cluster, now)
            .is_some());
        // Duplicate (in flight) blocked.
        assert!(mgr
            .maybe_replicate(video, size, &mut next_id, &mut engines, &map, &cluster, now)
            .is_none());
        // A different video is fine.
        assert!(mgr
            .maybe_replicate(
                VideoId(2),
                size,
                &mut next_id,
                &mut engines,
                &map,
                &cluster,
                now
            )
            .is_some());
        assert_eq!(mgr.stats.copies_started, 2);
    }

    #[test]
    fn concurrency_cap_enforced() {
        let (catalog, cluster, map, mut engines) = setup();
        let mut mgr = ReplicationManager::new(ReplicationSpec {
            copy_rate_mbps: 30.0,
            max_concurrent: 1,
            cooldown_secs: 0.0,
            source: CopySource::Tertiary,
        });
        let size = catalog.video(VideoId(0)).size_mb();
        let mut next_id = 0;
        let now = SimTime::ZERO;
        assert!(mgr
            .maybe_replicate(
                VideoId(0),
                size,
                &mut next_id,
                &mut engines,
                &map,
                &cluster,
                now
            )
            .is_some());
        assert!(mgr
            .maybe_replicate(
                VideoId(1),
                size,
                &mut next_id,
                &mut engines,
                &map,
                &cluster,
                now
            )
            .is_none());
    }

    #[test]
    fn aborts_on_source_failure() {
        let (catalog, cluster, map, mut engines) = setup();
        let mut mgr = ReplicationManager::new(ReplicationSpec::cluster_sourced());
        let video = VideoId(3);
        let size = catalog.video(video).size_mb();
        let mut next_id = 0;
        let launch = mgr
            .maybe_replicate(
                video,
                size,
                &mut next_id,
                &mut engines,
                &map,
                &cluster,
                SimTime::ZERO,
            )
            .unwrap();
        let CopyLaunch::FromServer { source, .. } = launch else {
            panic!("expected cluster-sourced copy");
        };
        assert_eq!(mgr.on_server_failed(source), 1);
        assert_eq!(mgr.stats.copies_aborted, 1);
        assert!(mgr.in_flight().is_empty());
    }

    #[test]
    fn tertiary_copy_survives_unrelated_failure_but_dies_with_target() {
        let (catalog, cluster, map, mut engines) = setup();
        let mut mgr = ReplicationManager::new(ReplicationSpec::default_paper_scale());
        let video = VideoId(4);
        let size = catalog.video(video).size_mb();
        let mut next_id = 0;
        let launch = mgr
            .maybe_replicate(
                video,
                size,
                &mut next_id,
                &mut engines,
                &map,
                &cluster,
                SimTime::ZERO,
            )
            .unwrap();
        let CopyLaunch::FromTertiary { .. } = launch else {
            panic!("expected tertiary copy");
        };
        let target = mgr.in_flight()[0].target;
        // Failing a server that holds the source replica does nothing.
        let holder = map.holders(video)[0];
        if holder != target {
            assert_eq!(mgr.on_server_failed(holder), 0);
        }
        assert_eq!(mgr.on_server_failed(target), 1);
        assert!(mgr.in_flight().is_empty());
    }

    #[test]
    fn no_target_without_disk() {
        let (catalog, _, map, mut engines) = setup();
        // A cluster whose disks are already effectively full.
        let tiny_disks = ClusterSpec::homogeneous(3, 90.0, 0.0001);
        let mut mgr = ReplicationManager::new(ReplicationSpec::default_paper_scale());
        let size = catalog.video(VideoId(0)).size_mb();
        let mut next_id = 0;
        assert!(mgr
            .maybe_replicate(
                VideoId(0),
                size,
                &mut next_id,
                &mut engines,
                &map,
                &tiny_disks,
                SimTime::ZERO
            )
            .is_none());
    }
}
