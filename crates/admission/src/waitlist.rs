//! Admission wait queue (extension).
//!
//! The paper's controller rejects a request outright when no slot can be
//! found or created ("if this fails, then the request is not accepted",
//! §3.2). Real VoD front-ends usually do better: the viewer tolerates a
//! short queueing delay before playback. This module adds that option —
//! a FIFO [`Waitlist`] with a patience bound. When a slot frees (stream
//! completion, server repair), queued requests are retried in arrival
//! order against the servers holding their video.
//!
//! Queued requests do not consume server resources; their playback clock
//! starts only when they are finally admitted.

use crate::controller::{Admission, Controller};
use sct_cluster::{ReplicaMap, ServerId};
use sct_media::{ClientProfile, VideoId};
use sct_simcore::{Rng, SimTime};
use sct_transmission::{ServerEngine, Stream, StreamId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Wait-queue knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WaitlistSpec {
    /// How long a viewer is willing to wait for playback to start.
    pub max_wait_secs: f64,
    /// Queue capacity; arrivals beyond it are rejected immediately.
    pub max_length: usize,
    /// Multicast batching (§6's "controlled multicasting" future work):
    /// when a queued request is finally served, every other waiter for the
    /// *same video* joins the same stream — one transmission, many
    /// viewers. All of them waited for the same start instant, so their
    /// playback is naturally synchronised.
    pub multicast_batching: bool,
}

impl WaitlistSpec {
    /// Creates a unicast spec; patience must be positive.
    pub fn new(max_wait_secs: f64, max_length: usize) -> Self {
        assert!(max_wait_secs > 0.0);
        assert!(max_length > 0);
        WaitlistSpec {
            max_wait_secs,
            max_length,
            multicast_batching: false,
        }
    }

    /// Same, with multicast batching on.
    pub fn batching(max_wait_secs: f64, max_length: usize) -> Self {
        WaitlistSpec {
            multicast_batching: true,
            ..Self::new(max_wait_secs, max_length)
        }
    }
}

/// A queued request (no resources held yet).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Waiter {
    /// The id the stream will carry once admitted.
    pub id: StreamId,
    /// Requested video.
    pub video: VideoId,
    /// Object size in megabits.
    pub size_mb: f64,
    /// View bandwidth.
    pub view_rate: f64,
    /// Client capabilities.
    pub client: ClientProfile,
    /// When the request arrived (wait time is measured from here).
    pub arrived: SimTime,
    /// When the viewer gives up.
    pub expires: SimTime,
}

/// Wait-queue counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WaitlistStats {
    /// Requests that entered the queue.
    pub enqueued: u64,
    /// Requests served from the queue (after a non-zero wait).
    pub served: u64,
    /// Requests that timed out waiting.
    pub expired: u64,
    /// Requests bounced because the queue was full.
    pub bounced: u64,
    /// Total seconds of (served) waiting, for the mean-wait metric.
    pub served_wait_secs: f64,
    /// Megabits of video belonging to served waiters (for acceptance
    /// reconciliation).
    pub served_mb: f64,
    /// Waiters served by joining an existing batch stream (subset of
    /// `served`; 0 without multicast batching).
    pub batched: u64,
}

impl WaitlistStats {
    /// Mean wait of requests that were eventually served, seconds.
    pub fn mean_served_wait_secs(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.served_wait_secs / self.served as f64
        }
    }
}

/// One request served out of the queue (for event reporting).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServedWaiter {
    /// The stream id the viewer now plays under.
    pub id: StreamId,
    /// The video served.
    pub video: VideoId,
    /// The server hosting the (possibly shared) stream.
    pub server: ServerId,
    /// `true` when the viewer joined an existing multicast batch instead
    /// of occupying a slot of its own.
    pub batched: bool,
    /// Queueing delay actually experienced, seconds.
    pub waited_secs: f64,
}

/// Everything one [`Waitlist::try_serve`] pass did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeOutcome {
    /// Servers whose schedules changed (the caller must re-arm their wake
    /// events), in first-touch order.
    pub touched: Vec<ServerId>,
    /// The requests served, in service order.
    pub served: Vec<ServedWaiter>,
    /// Non-direct admissions performed on a waiter's behalf: `(waiter
    /// stream, admission)`. Always empty for [`Waitlist::try_serve`]
    /// (direct placement only); populated by
    /// [`Waitlist::try_serve_admitting`] when serving a waiter migrated
    /// or chained other streams, so the caller can mirror or narrate the
    /// side effects.
    pub assists: Vec<(StreamId, Admission)>,
}

/// FIFO wait queue with patience bounds.
#[derive(Clone, Debug)]
pub struct Waitlist {
    spec: WaitlistSpec,
    queue: VecDeque<Waiter>,
    /// Counters for the trial.
    pub stats: WaitlistStats,
}

impl Waitlist {
    /// Creates an empty waitlist.
    pub fn new(spec: WaitlistSpec) -> Self {
        Waitlist {
            spec,
            queue: VecDeque::new(),
            stats: WaitlistStats::default(),
        }
    }

    /// Requests currently waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when nobody is waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Enqueues a request that admission just failed. Returns the waiter's
    /// expiry time (so the caller can schedule a timeout event), or `None`
    /// if the queue is full.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue(
        &mut self,
        id: StreamId,
        video: VideoId,
        size_mb: f64,
        view_rate: f64,
        client: ClientProfile,
        now: SimTime,
    ) -> Option<SimTime> {
        if self.queue.len() >= self.spec.max_length {
            self.stats.bounced += 1;
            return None;
        }
        let expires = now + self.spec.max_wait_secs;
        self.queue.push_back(Waiter {
            id,
            video,
            size_mb,
            view_rate,
            client,
            arrived: now,
            expires,
        });
        self.stats.enqueued += 1;
        Some(expires)
    }

    /// Drops every waiter whose patience has run out by `now`. FIFO order
    /// plus a uniform patience bound means expiry happens from the front.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let mut dropped = 0;
        while let Some(w) = self.queue.front() {
            if w.expires <= now {
                self.queue.pop_front();
                self.stats.expired += 1;
                dropped += 1;
            } else {
                break;
            }
        }
        dropped
    }

    /// Attempts to place queued requests (in arrival order) on servers
    /// with free slots. Returns the servers whose schedules changed (for
    /// wake re-arming) plus a record per served request. Waiters whose
    /// videos are still saturated stay queued — no head-of-line blocking
    /// across videos.
    pub fn try_serve(
        &mut self,
        engines: &mut [ServerEngine],
        map: &ReplicaMap,
        now: SimTime,
    ) -> ServeOutcome {
        let mut out = ServeOutcome::default();
        let mut remaining: VecDeque<Waiter> = VecDeque::with_capacity(self.queue.len());
        while let Some(w) = self.queue.pop_front() {
            debug_assert!(w.expires > now, "expired waiter not purged");
            let target = map
                .holders(w.video)
                .iter()
                .copied()
                .filter(|&s| engines[s.index()].can_admit(w.view_rate))
                .min_by_key(|s| (engines[s.index()].active_count(), *s));
            match target {
                Some(server) => {
                    // Playback starts now, not at arrival.
                    let stream = Stream::new(w.id, w.video, w.size_mb, w.view_rate, w.client, now);
                    engines[server.index()].admit(stream, now);
                    self.stats.served += 1;
                    self.stats.served_wait_secs += now - w.arrived;
                    self.stats.served_mb += w.size_mb;
                    out.served.push(ServedWaiter {
                        id: w.id,
                        video: w.video,
                        server,
                        batched: false,
                        waited_secs: now - w.arrived,
                    });
                    if !out.touched.contains(&server) {
                        out.touched.push(server);
                    }
                    if self.spec.multicast_batching {
                        self.batch_join(w.video, server, now, &mut out.served);
                    }
                }
                None => remaining.push_back(w),
            }
        }
        self.queue = remaining;
        out
    }

    /// Like [`Waitlist::try_serve`], but each placement runs through the
    /// full admission sequence of `controller` — direct placement,
    /// single-hop request migration, two-step chain — so a queued viewer
    /// can trigger the same migrations a fresh arrival would. Waiters are
    /// tried in FIFO order; one whose admission is rejected stays queued.
    /// Non-direct admissions are echoed in [`ServeOutcome::assists`].
    pub fn try_serve_admitting(
        &mut self,
        controller: &mut Controller,
        engines: &mut [ServerEngine],
        map: &ReplicaMap,
        now: SimTime,
        rng: &mut Rng,
    ) -> ServeOutcome {
        let mut out = ServeOutcome::default();
        let mut remaining: VecDeque<Waiter> = VecDeque::with_capacity(self.queue.len());
        while let Some(w) = self.queue.pop_front() {
            debug_assert!(w.expires > now, "expired waiter not purged");
            // Playback starts now, not at arrival.
            let stream = Stream::new(w.id, w.video, w.size_mb, w.view_rate, w.client, now);
            let (admission, touched) = controller.admit(stream, engines, map, now, rng);
            let server = match admission {
                Admission::Direct { server } => server,
                Admission::WithMigration { server, .. } | Admission::WithChain { server, .. } => {
                    out.assists.push((w.id, admission));
                    server
                }
                Admission::Rejected => {
                    remaining.push_back(w);
                    continue;
                }
            };
            self.stats.served += 1;
            self.stats.served_wait_secs += now - w.arrived;
            self.stats.served_mb += w.size_mb;
            out.served.push(ServedWaiter {
                id: w.id,
                video: w.video,
                server,
                batched: false,
                waited_secs: now - w.arrived,
            });
            for t in touched {
                if !out.touched.contains(&t) {
                    out.touched.push(t);
                }
            }
            if self.spec.multicast_batching {
                self.batch_join(w.video, server, now, &mut out.served);
            }
        }
        self.queue = remaining;
        out
    }

    /// Multicast cohort join: everyone still queued for `video` joins the
    /// stream just started on `server` — served without any additional
    /// server resources.
    fn batch_join(
        &mut self,
        video: VideoId,
        server: ServerId,
        now: SimTime,
        served: &mut Vec<ServedWaiter>,
    ) {
        let before = self.queue.len();
        self.queue.retain(|other| {
            if other.video == video {
                self.stats.served += 1;
                self.stats.batched += 1;
                self.stats.served_wait_secs += now - other.arrived;
                self.stats.served_mb += other.size_mb;
                served.push(ServedWaiter {
                    id: other.id,
                    video: other.video,
                    server,
                    batched: true,
                    waited_secs: now - other.arrived,
                });
                false
            } else {
                true
            }
        });
        debug_assert!(self.queue.len() <= before);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_transmission::SchedulerKind;

    const VIEW: f64 = 3.0;

    fn client() -> ClientProfile {
        ClientProfile::new(100.0, 30.0)
    }

    fn setup() -> (Vec<ServerEngine>, ReplicaMap) {
        let engines = vec![
            ServerEngine::new(ServerId(0), 6.0, SchedulerKind::Eftf), // 2 slots
            ServerEngine::new(ServerId(1), 6.0, SchedulerKind::Eftf),
        ];
        // v0 on s0 only; v1 on both.
        let map =
            ReplicaMap::from_holders(2, vec![vec![ServerId(0)], vec![ServerId(0), ServerId(1)]]);
        (engines, map)
    }

    #[test]
    fn waiters_are_served_when_slots_free() {
        let (mut engines, map) = setup();
        let t0 = SimTime::ZERO;
        // Fill s0 with two short v0 streams.
        engines[0].admit(
            Stream::new(StreamId(1), VideoId(0), 30.0, VIEW, client(), t0),
            t0,
        );
        engines[0].admit(
            Stream::new(StreamId(2), VideoId(0), 60.0, VIEW, client(), t0),
            t0,
        );
        let mut wl = Waitlist::new(WaitlistSpec::new(300.0, 10));
        let expires = wl
            .enqueue(StreamId(3), VideoId(0), 90.0, VIEW, client(), t0)
            .expect("queue has room");
        assert_eq!(expires, SimTime::from_secs(300.0));
        // Nothing free yet.
        assert!(wl.try_serve(&mut engines, &map, t0).touched.is_empty());
        assert_eq!(wl.len(), 1);
        // First stream finishes (30 Mb at up to 30 Mb/s → quickly; walk to
        // its completion).
        let done = engines[0].next_event_after(t0).unwrap().0;
        engines[0].advance_to(done);
        engines[0].reap_finished(done);
        engines[0].reschedule(done);
        let outcome = wl.try_serve(&mut engines, &map, done);
        assert_eq!(outcome.touched, vec![ServerId(0)]);
        assert_eq!(outcome.served.len(), 1);
        assert_eq!(outcome.served[0].id, StreamId(3));
        assert!(!outcome.served[0].batched);
        assert!((outcome.served[0].waited_secs - (done - t0)).abs() < 1e-9);
        assert!(wl.is_empty());
        assert_eq!(wl.stats.served, 1);
        assert!((wl.stats.mean_served_wait_secs() - (done - t0)).abs() < 1e-9);
        // Playback clock restarted at service time.
        let s = engines[0]
            .streams()
            .iter()
            .find(|s| s.id == StreamId(3))
            .unwrap();
        assert_eq!(s.start, done);
    }

    #[test]
    fn no_head_of_line_blocking_across_videos() {
        let (mut engines, map) = setup();
        let t0 = SimTime::ZERO;
        // s0 full; s1 open (holds only v1).
        engines[0].admit(
            Stream::new(StreamId(1), VideoId(0), 300.0, VIEW, client(), t0),
            t0,
        );
        engines[0].admit(
            Stream::new(StreamId(2), VideoId(0), 300.0, VIEW, client(), t0),
            t0,
        );
        let mut wl = Waitlist::new(WaitlistSpec::new(300.0, 10));
        wl.enqueue(StreamId(3), VideoId(0), 90.0, VIEW, client(), t0); // stuck
        wl.enqueue(StreamId(4), VideoId(1), 90.0, VIEW, client(), t0); // s1 can take it
        let outcome = wl.try_serve(&mut engines, &map, t0);
        assert_eq!(outcome.touched, vec![ServerId(1)]);
        assert_eq!(wl.len(), 1, "v0 waiter stays queued");
        assert_eq!(wl.stats.served, 1);
    }

    #[test]
    fn expiry_is_fifo_and_counted() {
        let (_, _) = setup();
        let mut wl = Waitlist::new(WaitlistSpec::new(10.0, 10));
        wl.enqueue(StreamId(1), VideoId(0), 90.0, VIEW, client(), SimTime::ZERO);
        wl.enqueue(
            StreamId(2),
            VideoId(0),
            90.0,
            VIEW,
            client(),
            SimTime::from_secs(5.0),
        );
        assert_eq!(wl.expire(SimTime::from_secs(9.0)), 0);
        assert_eq!(wl.expire(SimTime::from_secs(10.0)), 1);
        assert_eq!(wl.len(), 1);
        assert_eq!(wl.expire(SimTime::from_secs(20.0)), 1);
        assert!(wl.is_empty());
        assert_eq!(wl.stats.expired, 2);
    }

    #[test]
    fn batching_serves_whole_cohort_with_one_slot() {
        let (mut engines, map) = setup();
        let t0 = SimTime::ZERO;
        // s0 (the only holder of v0) full with long streams.
        engines[0].admit(
            Stream::new(StreamId(1), VideoId(0), 3000.0, VIEW, client(), t0),
            t0,
        );
        engines[0].admit(
            Stream::new(StreamId(2), VideoId(0), 3000.0, VIEW, client(), t0),
            t0,
        );
        let mut wl = Waitlist::new(WaitlistSpec::batching(10_000.0, 100));
        for i in 10..15 {
            wl.enqueue(StreamId(i), VideoId(0), 600.0, VIEW, client(), t0);
        }
        assert_eq!(wl.len(), 5);
        // Free exactly one slot.
        let t1 = SimTime::from_secs(1.0);
        engines[0].advance_to(t1);
        engines[0].remove_stream(StreamId(1), t1);
        engines[0].reschedule(t1);
        let outcome = wl.try_serve(&mut engines, &map, t1);
        assert_eq!(outcome.touched, vec![ServerId(0)]);
        assert!(wl.is_empty(), "the whole cohort shares the one stream");
        assert_eq!(wl.stats.served, 5);
        assert_eq!(wl.stats.batched, 4);
        assert_eq!(outcome.served.len(), 5);
        assert_eq!(
            outcome.served.iter().filter(|s| s.batched).count(),
            4,
            "one slot-holder, four batch joiners"
        );
        assert!(outcome.served.iter().all(|s| s.server == ServerId(0)));
        // Only one actual stream occupies the server.
        assert_eq!(engines[0].active_count(), 2);
    }

    #[test]
    fn unicast_waitlist_serves_one_per_slot() {
        let (mut engines, map) = setup();
        let t0 = SimTime::ZERO;
        engines[0].admit(
            Stream::new(StreamId(1), VideoId(0), 3000.0, VIEW, client(), t0),
            t0,
        );
        engines[0].admit(
            Stream::new(StreamId(2), VideoId(0), 3000.0, VIEW, client(), t0),
            t0,
        );
        let mut wl = Waitlist::new(WaitlistSpec::new(10_000.0, 100));
        for i in 10..15 {
            wl.enqueue(StreamId(i), VideoId(0), 600.0, VIEW, client(), t0);
        }
        let t1 = SimTime::from_secs(1.0);
        engines[0].advance_to(t1);
        engines[0].remove_stream(StreamId(1), t1);
        engines[0].reschedule(t1);
        wl.try_serve(&mut engines, &map, t1);
        assert_eq!(wl.stats.served, 1, "no batching: one slot, one viewer");
        assert_eq!(wl.len(), 4);
    }

    #[test]
    fn admitting_serve_triggers_a_chain_where_direct_fails() {
        use crate::policy::{AssignmentPolicy, MigrationPolicy};
        // v0 on s0 only; v1 on {s0,s1}; v2 on {s1,s2}. s0 full of v1,
        // s1 full of v2, s2 open: a v0 waiter can only be served by the
        // two-step chain (v2: s1→s2, then v1: s0→s1).
        let mut engines = vec![
            ServerEngine::new(ServerId(0), 6.0, SchedulerKind::Eftf),
            ServerEngine::new(ServerId(1), 6.0, SchedulerKind::Eftf),
            ServerEngine::new(ServerId(2), 6.0, SchedulerKind::Eftf),
        ];
        let map = ReplicaMap::from_holders(
            3,
            vec![
                vec![ServerId(0)],
                vec![ServerId(0), ServerId(1)],
                vec![ServerId(1), ServerId(2)],
            ],
        );
        let t0 = SimTime::ZERO;
        for i in 0..2u64 {
            engines[0].admit(
                Stream::new(StreamId(i), VideoId(1), 3000.0, VIEW, client(), t0),
                t0,
            );
            engines[1].admit(
                Stream::new(StreamId(10 + i), VideoId(2), 3000.0, VIEW, client(), t0),
                t0,
            );
        }
        let now = SimTime::from_secs(10.0);
        for e in engines.iter_mut() {
            e.advance_to(now);
            e.reschedule(now);
        }
        let mut wl = Waitlist::new(WaitlistSpec::new(300.0, 10));
        wl.enqueue(StreamId(50), VideoId(0), 90.0, VIEW, client(), now);
        // Direct-only serving cannot place it.
        assert!(wl.try_serve(&mut engines, &map, now).served.is_empty());
        assert_eq!(wl.len(), 1);
        let mut c = Controller::new(
            AssignmentPolicy::LeastLoaded,
            MigrationPolicy {
                handoff_latency_secs: 0.0,
                ..MigrationPolicy::chain2()
            },
        );
        let mut rng = Rng::new(11);
        let outcome = wl.try_serve_admitting(&mut c, &mut engines, &map, now, &mut rng);
        assert!(wl.is_empty());
        assert_eq!(outcome.served.len(), 1);
        assert_eq!(outcome.served[0].id, StreamId(50));
        assert_eq!(outcome.served[0].server, ServerId(0));
        assert_eq!(outcome.assists.len(), 1);
        match outcome.assists[0] {
            (StreamId(50), Admission::WithChain { server, .. }) => {
                assert_eq!(server, ServerId(0));
            }
            ref other => panic!("expected a chain assist, got {other:?}"),
        }
        assert_eq!(outcome.touched, vec![ServerId(0), ServerId(1), ServerId(2)]);
        assert_eq!(c.stats.chain2_migrations, 1);
        assert_eq!(wl.stats.served, 1);
        for e in &engines {
            e.check_invariants();
        }
    }

    #[test]
    fn admitting_serve_keeps_rejected_waiters_queued() {
        use crate::policy::{AssignmentPolicy, MigrationPolicy};
        let (mut engines, map) = setup();
        let t0 = SimTime::ZERO;
        // s0 (sole holder of v0) full with long zero-staging streams and
        // no viable migration target: admission must reject.
        engines[0].admit(
            Stream::new(StreamId(1), VideoId(0), 3000.0, VIEW, client(), t0),
            t0,
        );
        engines[0].admit(
            Stream::new(StreamId(2), VideoId(0), 3000.0, VIEW, client(), t0),
            t0,
        );
        let mut wl = Waitlist::new(WaitlistSpec::new(300.0, 10));
        wl.enqueue(StreamId(3), VideoId(0), 90.0, VIEW, client(), t0);
        let mut c = Controller::new(AssignmentPolicy::LeastLoaded, MigrationPolicy::disabled());
        let mut rng = Rng::new(12);
        let outcome = wl.try_serve_admitting(&mut c, &mut engines, &map, t0, &mut rng);
        assert!(outcome.served.is_empty());
        assert!(outcome.assists.is_empty());
        assert!(outcome.touched.is_empty());
        assert_eq!(wl.len(), 1, "rejected waiter must stay queued");
    }

    #[test]
    fn full_queue_bounces() {
        let mut wl = Waitlist::new(WaitlistSpec::new(10.0, 1));
        assert!(wl
            .enqueue(StreamId(1), VideoId(0), 90.0, VIEW, client(), SimTime::ZERO)
            .is_some());
        assert!(wl
            .enqueue(StreamId(2), VideoId(0), 90.0, VIEW, client(), SimTime::ZERO)
            .is_none());
        assert_eq!(wl.stats.bounced, 1);
    }
}
