//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! slice of serde's surface that the workspace actually uses: the
//! `Serialize`/`Deserialize` traits (here defined over an in-memory
//! [`Value`] model rather than serde's visitor architecture), impls for the
//! primitive and container types that appear in derived items, and a
//! re-export of the derive macros behind the `derive` feature.
//!
//! The companion `serde_json` stand-in renders [`Value`] to JSON and parses
//! JSON back into it, so `#[derive(Serialize, Deserialize)]` +
//! `serde_json::{to_string, from_str}` round-trip exactly as the real pair
//! does for the shapes used here (externally-tagged enums, transparent
//! newtypes, non-finite floats mapped to `null`).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// An in-memory serialisation tree: the common denominator between Rust
/// values and JSON text.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All integers, signed or not, live in an `i128` (wide enough for
    /// every integer type this workspace serialises).
    Int(i128),
    /// Finite floats. Non-finite floats are encoded as [`Value::Null`],
    /// mirroring serde_json's JSON mapping.
    Num(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Maps preserve insertion order, like serde_json's `preserve_order`.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value, if this is one.
    pub fn as_map(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of a sequence value, if this is one.
    pub fn as_seq(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// A deserialisation error: what was expected, and where.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A free-form error message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// `expected` a shape while deserialising `ty`.
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError {
            msg: format!("expected {what} while deserialising {ty}"),
        }
    }

    /// A field required by `ty` was missing from the input map.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError {
            msg: format!("missing field `{field}` while deserialising {ty}"),
        }
    }

    /// An enum tag that `ty` does not define.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError {
            msg: format!("unknown variant `{variant}` for {ty}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Looks up `name` in a map's entries (derive-macro helper).
pub fn map_field<'v>(
    map: &'v [(String, Value)],
    name: &str,
    ty: &str,
) -> Result<&'v Value, DeError> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::missing_field(name, ty))
}

/// Conversion into the [`Value`] model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        DeError::custom(format!(
                            "integer {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    _ => Err(DeError::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(i) => Ok(*i),
            _ => Err(DeError::expected("integer", "i128")),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as f64;
                // JSON has no non-finite numbers; serde_json writes null.
                if x.is_finite() {
                    Value::Num(x)
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(x) => Ok(*x as $t),
                    // Integer literals are valid floats in JSON.
                    Value::Int(i) => Ok(*i as $t),
                    // null (the non-finite encoding) does NOT silently
                    // round-trip; failing beats corrupting a config.
                    _ => Err(DeError::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("sequence", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v
                    .as_seq()
                    .ok_or_else(|| DeError::expected("sequence", "tuple"))?;
                if s.len() != $n {
                    return Err(DeError::expected("tuple of matching arity", "tuple"));
                }
                Ok(($($t::from_value(&s[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        let v: Vec<f64> = vec![1.0, 2.5];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()), Ok(v));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).is_err());
    }

    #[test]
    fn options_and_tuples() {
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        let t = (1.5f64, 7u32);
        assert_eq!(<(f64, u32)>::from_value(&t.to_value()), Ok(t));
    }
}
