//! Offline stand-in for `serde_json`.
//!
//! Bridges the vendored `serde` crate's [`Value`] model to JSON text:
//! [`to_string`]/[`to_string_pretty`] render a `Serialize` type,
//! [`from_str`] parses JSON and decodes a `Deserialize` type. Numbers are
//! written with Rust's shortest-exact `f64` formatting, so floats
//! round-trip bit-for-bit (the real crate needs the `float_roundtrip`
//! feature for this; here it is the only behaviour).

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// A serialisation or parse error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialises `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialises `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text and decodes a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

fn write_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Num(x) => {
            // Rust's Display for f64 is the shortest string that parses
            // back to the same bits, and never uses exponent notation —
            // both properties make it valid, exact JSON.
            out.push_str(&x.to_string());
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            write_indent(indent, depth, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(indent, depth + 1, out);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            write_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs don't occur in this
                            // workspace's data; map them to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Collect the longest run of plain UTF-8 bytes.
                    let start = self.pos - 1;
                    while let Some(&nb) = self.bytes.get(self.pos) {
                        if nb == b'"' || nb == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let x: f64 = from_str(&to_string(&0.1f64).unwrap()).unwrap();
        assert_eq!(x, 0.1);
        let n: i64 = from_str("-42").unwrap();
        assert_eq!(n, -42);
        let b: bool = from_str(" true ").unwrap();
        assert!(b);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1.5f64, 2.0], vec![]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1.5,2],[]]");
        let back: Vec<Vec<f64>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_format_matches_serde_json() {
        let v = vec![(1.5f64, 2u32)];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("[\n  [\n    1.5,\n    2\n  ]\n]"), "{s}");
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn exact_float_round_trip() {
        for &x in &[1.0 / 3.0, f64::MIN_POSITIVE, 1e300, 593.9863875361672] {
            let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }
}
