//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the bench targets use — `Criterion`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `BatchSize`,
//! `iter`/`iter_batched`, and the `criterion_group!`/`criterion_main!`
//! macros — backed by a simple wall-clock harness: each benchmark runs a
//! short warm-up, then `sample_size` timed samples, and prints mean /
//! fastest-sample times. No statistics, plots, or baselines.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortises setup; the stub times per-iteration
/// regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let fastest = samples.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<40} mean {mean:>12.3?}   fastest {fastest:>12.3?}   ({} samples)",
        samples.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (criterion's default is 100; heavy groups
    /// in this workspace set 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    pub fn finish(self) {}
}

/// The harness entry point handed to each `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function("base", f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
