//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the slice of proptest this workspace uses: value-generating strategies
//! (ranges, tuples, collections, `any`, `Just`, unions), the `proptest!` /
//! `prop_assert!` macro family, and a runner that replays checked-in
//! `*.proptest-regressions` seed files before generating fresh cases.
//!
//! Differences from the real crate, by design:
//! * **No shrinking.** A failing case reports its replayable seed instead
//!   of a minimised value; deterministic repro tests should then pin the
//!   shrunken scenario explicitly.
//! * **Deterministic generation.** Case seeds derive from the test's file
//!   and name, so a run is reproducible without external entropy.
//! * **Foreign seeds replay deterministically but not value-identically.**
//!   Seed files written by the real proptest (32-byte hex blobs) cannot be
//!   decoded into this generator's state; they are hashed to a stable
//!   64-bit seed so each checked-in entry still pins one deterministic
//!   case. Seeds written by this crate (16 hex digits) replay exactly.

use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// A deterministic generator: splitmix64, which passes through every
/// 64-bit state and has no bad seeds.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift bounded draw; bias is < 2^-64 per call, far
        // below anything a property test can observe.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Picks one of several strategies uniformly per case (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// `prop_oneof!` support: unifies heterogeneous strategy arms.
pub fn union_of<T>(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    Union { arms }
}

/// `prop_oneof!` support: boxes one arm.
pub fn box_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is fair.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Inclusive of both ends up to rounding; the distinction is
        // immaterial for continuous draws.
        self.start() + rng.unit() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Whole-domain strategy for an integer type.
pub struct FullInt<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullInt<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullInt<$t>;
            fn arbitrary() -> Self::Strategy {
                FullInt(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> Self::Strategy {
        AnyBool
    }
}

/// `prop::bool`.
pub mod bool {
    /// A fair coin.
    pub const ANY: super::AnyBool = super::AnyBool;
}

/// A collection size specification for `prop::collection::vec`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// `prop::collection`.
pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `BTreeSet` whose target size is drawn from `size`. Duplicate
    /// draws are retried a bounded number of times, so a small element
    /// domain may yield a set below the target size (as in the real
    /// crate, where the simplest cases also undershoot).
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            let mut set = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < n && attempts < n * 16 + 16 {
                set.insert(self.elem.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Locates `source_file` (a `file!()` path, relative to the workspace
/// root) from the test process's working directory (the *package* root),
/// walking up parent directories until the path resolves.
fn resolve_source(source_file: &str) -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let candidate = dir.join(source_file);
        if candidate.exists() {
            return Some(candidate);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn regression_path(source_file: &str) -> Option<PathBuf> {
    resolve_source(source_file).map(|p| p.with_extension("proptest-regressions"))
}

/// Decodes one `cc <hex>` seed-file entry into a replay seed. Our own
/// entries are exactly 16 hex digits and decode to their literal value;
/// longer blobs written by the real proptest are hashed (FNV-1a) so they
/// still pin a deterministic case.
fn seed_from_entry(hex: &str) -> u64 {
    if hex.len() == 16 {
        if let Ok(seed) = u64::from_str_radix(hex, 16) {
            return seed;
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in hex.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn load_regression_seeds(source_file: &str) -> Vec<u64> {
    let Some(path) = regression_path(source_file) else {
        return Vec::new();
    };
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            let rest = line.strip_prefix("cc ")?;
            let hex = rest.split_whitespace().next()?;
            Some(seed_from_entry(hex))
        })
        .collect()
}

fn persist_regression(source_file: &str, test_name: &str, seed: u64) {
    let Some(path) = regression_path(source_file) else {
        return;
    };
    let entry = format!("cc {seed:016x} # seed for `{test_name}`, replayed before random cases\n");
    let mut text = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        "# Seeds for failing cases; this file is replayed before random generation.\n\
         # Entries written by the vendored proptest are 16 hex digits and replay\n\
         # exactly; longer entries from the real proptest replay as hashed seeds.\n"
            .to_string()
    });
    if text.contains(&format!("cc {seed:016x}")) {
        return;
    }
    text.push_str(&entry);
    let _ = std::fs::write(&path, text);
}

fn stable_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property: replays the regression file, then `cfg.cases`
/// deterministic fresh cases. On failure, persists the case seed and
/// re-raises the panic annotated with the replay seed.
pub fn run_proptest<F>(cfg: &ProptestConfig, source_file: &str, test_name: &str, body: F)
where
    F: Fn(&mut TestRng),
{
    let mut failures: Vec<(u64, String)> = Vec::new();
    let run_case = |seed: u64, origin: &str, failures: &mut Vec<(u64, String)>| {
        let mut rng = TestRng::new(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            failures.push((seed, format!("{origin} seed {seed:016x}: {msg}")));
        }
    };

    for seed in load_regression_seeds(source_file) {
        run_case(seed, "regression", &mut failures);
    }

    // Like the real crate, `PROPTEST_CASES` overrides the configured count.
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(cfg.cases);
    let base = stable_hash(source_file) ^ stable_hash(test_name).rotate_left(32);
    for case in 0..cases {
        if !failures.is_empty() {
            break;
        }
        // Decorrelate successive case seeds; the case body sees a fresh
        // splitmix stream either way.
        let seed = TestRng::new(base ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)).next_u64();
        run_case(seed, "case", &mut failures);
    }

    if let Some((seed, msg)) = failures.first() {
        persist_regression(source_file, test_name, *seed);
        resume_unwind(Box::new(format!(
            "property `{test_name}` failed ({msg}); seed {seed:016x} persisted to the \
             .proptest-regressions file"
        )));
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };

    /// Mirror of the real prelude's `prop` module alias.
    pub mod prop {
        pub use crate::{bool, collection};
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let __strategy = ($($strat,)+);
            $crate::run_proptest(&__cfg, file!(), stringify!($name), |__rng| {
                #[allow(unused_parens, unused_mut)]
                let ($($arg,)+) = $crate::Strategy::generate(&__strategy, __rng);
                $body
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            panic!(
                "assertion failed: `{} == {}` ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            panic!($($fmt)+);
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            panic!(
                "assertion failed: `{} != {}` (both {:?})",
                stringify!($a),
                stringify!($b),
                __a
            );
        }
    }};
}

/// Skips the current case when its inputs don't meet a precondition. The
/// real crate resamples; here the case simply passes vacuously, which
/// keeps the runner total while preserving the guard semantics.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::union_of(vec![$($crate::box_strategy($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let x = (2usize..6).generate(&mut rng);
            assert!((2..6).contains(&x));
            let f = (0.0f64..40.0).generate(&mut rng);
            assert!((0.0..40.0).contains(&f));
            let i = (-1.5f64..=1.0).generate(&mut rng);
            assert!((-1.5..=1.0).contains(&i));
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = collection::vec(0u8..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            let w = collection::vec(0u8..10, 3usize..=3).generate(&mut rng);
            assert_eq!(w.len(), 3);
        }
    }

    #[test]
    fn union_samples_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2u8), 10u8..20];
        let mut rng = TestRng::new(11);
        let mut seen = [false; 3];
        for _ in 0..300 {
            match s.generate(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                x if (10..20).contains(&x) => seen[2] = true,
                other => panic!("value {other} outside all arms"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn same_seed_same_sequence() {
        let s = (0.0f64..1.0, any::<u64>(), collection::vec(0u32..9, 0..8));
        let a = s.generate(&mut TestRng::new(99));
        let b = s.generate(&mut TestRng::new(99));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_plumbs_values(x in 1u32..100, mut v in collection::vec(0u8..5, 0..4)) {
            v.push(0);
            prop_assert!(x >= 1 && x < 100);
            prop_assert!(!v.is_empty());
        }
    }
}
