//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the real
//! serde/serde_derive (and their syn/quote dependency tree) cannot be
//! fetched. This crate hand-parses the item token stream with nothing but
//! the compiler-provided `proc_macro` API and emits impls of the vendored
//! `serde` crate's value-model traits (`Serialize::to_value` /
//! `Deserialize::from_value`).
//!
//! Supported shapes — the full set used by this workspace:
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently, like serde),
//! * unit structs,
//! * enums with unit / newtype / tuple / struct variants, encoded in
//!   serde's externally-tagged JSON layout (`"Variant"`,
//!   `{"Variant": ...}`).
//!
//! Not supported (not needed here): generics, `#[serde(...)]` attributes,
//! unions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields: just the arity.
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Consumes leading attributes (`#[...]` / `#![...]`) from `iter`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                // Optional `!` for inner attributes.
                if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    if p.as_char() == '!' {
                        i += 1;
                    }
                }
                // The `[...]` group.
                if let Some(TokenTree::Group(_)) = tokens.get(i) {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    i
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits the tokens of a fields group on top-level commas, where "top
/// level" accounts for `<...>` nesting (delimited groups are already atomic
/// in a token stream).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parses a named-fields body (`{ a: T, b: U }`) into field names.
fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<String> {
    split_top_level_commas(group_tokens)
        .into_iter()
        .filter_map(|field_tokens| {
            let mut i = skip_attrs(&field_tokens, 0);
            i = skip_vis(&field_tokens, i);
            match field_tokens.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other}"),
    };
    i += 1;
    // Reject generics outright: nothing in this workspace derives on a
    // generic type, and silently producing broken impls would be worse.
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic types are not supported ({name})");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let body: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&body))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let body: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(split_top_level_commas(&body).len())
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde derive: unsupported struct body for {name}: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    g.stream().into_iter().collect::<Vec<_>>()
                }
                other => panic!("serde derive: expected enum body for {name}, got {other:?}"),
            };
            let mut variants = Vec::new();
            let mut j = 0usize;
            while j < body.len() {
                j = skip_attrs(&body, j);
                let Some(TokenTree::Ident(id)) = body.get(j) else {
                    break;
                };
                let vname = id.to_string();
                j += 1;
                let fields = match body.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        j += 1;
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        Fields::Named(parse_named_fields(&inner))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        j += 1;
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        Fields::Tuple(split_top_level_commas(&inner).len())
                    }
                    _ => Fields::Unit,
                };
                // Skip the trailing comma, if any.
                if let Some(TokenTree::Punct(p)) = body.get(j) {
                    if p.as_char() == ',' {
                        j += 1;
                    }
                }
                variants.push(Variant { name: vname, fields });
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde derive: cannot derive on `{other}` items"),
    }
}

fn serialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "({:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))",
                                f
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let entries: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", entries.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(vec![({vn:?}.to_string(), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let vals: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![({vn:?}\
                                 .to_string(), ::serde::Value::Map(vec![{}]))]),",
                                vals.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn named_field_reads(type_label: &str, fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::map_field(__m, {f:?}, \
                 {type_label:?})?)?,"
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn deserialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Named(fs) => format!(
                    "let __m = __v.as_map().ok_or_else(|| ::serde::DeError::expected(\
                     \"map\", {name:?}))?;\nOk({name} {{\n{}\n}})",
                    named_field_reads(name, fs)
                ),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
                }
                Fields::Tuple(n) => {
                    let reads: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                        .collect();
                    format!(
                        "let __s = __v.as_seq().ok_or_else(|| ::serde::DeError::expected(\
                         \"sequence\", {name:?}))?;\n\
                         if __s.len() != {n} {{ return Err(::serde::DeError::expected(\
                         \"{n}-element sequence\", {name:?})); }}\n\
                         Ok({name}({}))",
                        reads.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 {body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(\
                             __inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let reads: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_value(&__s[{k}])?")
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let __s = __inner.as_seq().ok_or_else(|| \
                                 ::serde::DeError::expected(\"sequence\", {vn:?}))?;\n\
                                 if __s.len() != {n} {{ return Err(::serde::DeError::expected(\
                                 \"{n}-element sequence\", {vn:?})); }}\n\
                                 Ok({name}::{vn}({}))\n}},",
                                reads.join(", ")
                            ))
                        }
                        Fields::Named(fs) => Some(format!(
                            "{vn:?} => {{\n\
                             let __m = __inner.as_map().ok_or_else(|| \
                             ::serde::DeError::expected(\"map\", {vn:?}))?;\n\
                             Ok({name}::{vn} {{\n{}\n}})\n}},",
                            named_field_reads(vn, fs)
                        )),
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {}\n\
                 __other => Err(::serde::DeError::unknown_variant(__other, {name:?})),\n\
                 }},\n\
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = &__m[0];\n\
                 match __tag.as_str() {{\n\
                 {}\n\
                 __other => Err(::serde::DeError::unknown_variant(__other, {name:?})),\n\
                 }}\n\
                 }},\n\
                 _ => Err(::serde::DeError::expected(\"variant string or single-key map\", \
                 {name:?})),\n\
                 }}\n}}\n}}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    serialize_impl(&item)
        .parse()
        .expect("serde derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    deserialize_impl(&item)
        .parse()
        .expect("serde derive: generated Deserialize impl must parse")
}
