//! End-to-end invariant sweeps: run the full simulation with expensive
//! per-event invariant checking across the policy/scheduler matrix, and
//! verify conservation and determinism properties that span all crates.

use sct_admission::MigrationPolicy;
use sct_core::config::{SimConfig, StagingSpec};
use sct_core::policies::Policy;
use sct_core::simulation::Simulation;
use sct_transmission::SchedulerKind;
use sct_workload::{HeterogeneityKind, SystemSpec};

fn checked(system: SystemSpec) -> sct_core::config::SimConfigBuilder {
    SimConfig::builder(system)
        .duration_hours(3.0)
        .warmup_hours(0.25)
        .check_invariants(true)
}

/// Every policy row of Fig. 6 survives full invariant checking: min-flow
/// rates, capacity limits, buffer bounds, playback-never-starves.
#[test]
fn all_policies_respect_invariants() {
    for policy in Policy::ALL {
        for theta in [-1.0, 0.271, 1.0] {
            let out = Simulation::run(
                &checked(SystemSpec::tiny_test())
                    .policy(policy)
                    .theta(theta)
                    .seed(99)
                    .build(),
            );
            assert!(out.utilization > 0.0 && out.utilization <= 1.0 + 1e-9);
            out.stats.check();
        }
    }
}

/// Every scheduler kind survives invariant checking with staging on.
#[test]
fn all_schedulers_respect_invariants() {
    for scheduler in SchedulerKind::ALL {
        let out = Simulation::run(
            &checked(SystemSpec::tiny_test())
                .scheduler(scheduler)
                .staging_fraction(0.3)
                .seed(7)
                .build(),
        );
        assert!(out.utilization > 0.0 && out.utilization <= 1.0 + 1e-9);
    }
}

/// Migration with a *non-zero* hand-off latency (our realistic extension)
/// also holds the invariants and still fires once clients stage data.
#[test]
fn migration_with_handoff_latency_is_safe() {
    let out = Simulation::run(
        &checked(SystemSpec::tiny_test())
            .staging_fraction(0.2)
            .migration(MigrationPolicy {
                handoff_latency_secs: 2.0,
                ..MigrationPolicy::single_hop()
            })
            .duration_hours(6.0)
            .seed(3)
            .build(),
    );
    assert!(
        out.stats.accepted_via_migration > 0,
        "migration never fired"
    );
}

/// Heterogeneous clusters hold invariants for both kinds and several
/// spreads.
#[test]
fn heterogeneous_clusters_respect_invariants() {
    for kind in [HeterogeneityKind::Bandwidth, HeterogeneityKind::Storage] {
        for spread in [0.3, 0.8] {
            let out = Simulation::run(
                &checked(SystemSpec::tiny_test())
                    .heterogeneity(kind, spread)
                    .seed(5)
                    .build(),
            );
            assert!(out.utilization > 0.0 && out.utilization <= 1.0 + 1e-9);
        }
    }
}

/// Unbounded staging and receive caps (Theorem 1 regime) at system scale.
#[test]
fn unbounded_clients_respect_invariants() {
    let out = Simulation::run(
        &checked(SystemSpec::tiny_test())
            .staging(StagingSpec::Unbounded)
            .receive_cap(f64::INFINITY)
            .seed(13)
            .build(),
    );
    // With unlimited workahead, servers drain instantly; utilization is
    // bounded by offered acceptance but must stay a valid ratio.
    assert!(out.utilization > 0.0 && out.utilization <= 1.0 + 1e-9);
    assert!(out.completions > 0);
}

/// The utilization metric is conserved: megabits counted by the engines
/// can never exceed what admission accepted, and acceptance can never
/// exceed arrivals.
#[test]
fn conservation_across_the_stack() {
    let cfg = checked(SystemSpec::tiny_test())
        .policy(Policy::P4)
        .duration_hours(5.0)
        .warmup_hours(0.0)
        .seed(21)
        .build();
    let out = Simulation::run(&cfg);
    let capacity_mb = cfg.system.total_bandwidth_mbps() * out.measured_hours * 3600.0;
    let sent = out.utilization * capacity_mb;
    assert!(sent <= out.stats.accepted_mb + 1.0);
    assert!(out.stats.accepted() <= out.stats.arrivals);
    assert!(out.completions <= out.stats.accepted());
}

/// Bit-for-bit determinism of the entire pipeline, including with
/// migration and heterogeneity enabled.
#[test]
fn full_pipeline_determinism() {
    let mk = || {
        checked(SystemSpec::tiny_test())
            .policy(Policy::P8)
            .heterogeneity(HeterogeneityKind::Bandwidth, 0.4)
            .theta(-0.5)
            .seed(0xDEAD)
            .build()
    };
    let a = Simulation::run(&mk());
    let b = Simulation::run(&mk());
    assert_eq!(a, b);
}

/// Short horizons and long videos: a run shorter than a single video still
/// behaves (partial transmissions counted, no panic).
#[test]
fn horizon_shorter_than_videos() {
    let mut system = SystemSpec::tiny_test();
    system.video_length_secs = (3600.0, 7200.0); // 1-2 h videos
    let out = Simulation::run(
        &SimConfig::builder(system)
            .duration_hours(0.5)
            .warmup_hours(0.0)
            .check_invariants(true)
            .seed(2)
            .build(),
    );
    assert_eq!(out.completions, 0, "nothing can finish in half an hour");
    assert!(
        out.utilization > 0.0,
        "partial transmission must be counted"
    );
}
