//! Deterministic replays of the two checked-in proptest regression seeds.
//!
//! The `.proptest-regressions` files pin these scenarios as opaque
//! generator seeds; this file pins the *shrunken values* from those files'
//! comments as plain tests, so the reproductions survive any change of
//! property-testing framework or generator and run on every `cargo test`.

use sct_admission::{Admission, AssignmentPolicy, Controller, MigrationPolicy, VictimSelection};
use sct_cluster::{ReplicaMap, ServerId};
use sct_media::{ClientProfile, VideoId};
use sct_simcore::{Rng, SimTime};
use sct_transmission::{SchedulerKind, ServerEngine, Stream, StreamId};

const VIEW: f64 = 3.0;

/// The shrunken `controller_props` scenario:
/// 2 servers x 5 slots, video 0 held only by server 0, video 1 only by
/// server 1, migration off, and three arrivals — a long clip for video 1
/// and two interleaved short clips for video 0, the first two at t = 0.
#[test]
fn controller_props_regression_seed_bd871fc3() {
    let n_servers = 2usize;
    let slots = 5usize;
    let capacity = slots as f64 * VIEW;
    let arrivals: [(f64, usize, f64); 3] = [
        (0.0, 1, 593.9863875361672),
        (0.0, 0, 60.0),
        (31.163592067570615, 0, 60.0),
    ];
    let mut engines: Vec<ServerEngine> = (0..n_servers as u16)
        .map(|i| ServerEngine::new(ServerId(i), capacity, SchedulerKind::Eftf))
        .collect();
    let holders: Vec<Vec<ServerId>> = vec![vec![ServerId(0)], vec![ServerId(1)]];
    let map = ReplicaMap::from_holders(n_servers, holders);
    let migration = MigrationPolicy {
        enabled: false,
        max_hops_per_request: Some(0),
        handoff_latency_secs: 0.0,
        victim_selection: VictimSelection::MostStaged,
        ..MigrationPolicy::single_hop()
    };
    let mut controller = Controller::new(AssignmentPolicy::LeastLoaded, migration);
    let mut rng = Rng::new(1894168633426176511);
    let client = ClientProfile::new(300.0, 30.0);

    let mut t = 0.0f64;
    for (i, &(gap, vid, size)) in arrivals.iter().enumerate() {
        t += gap;
        let arrival = SimTime::from_secs(t);
        loop {
            let next = engines
                .iter()
                .filter_map(|e| e.next_event_after(e.clock()).map(|(w, _)| (w, e.id())))
                .min_by(|a, b| a.0.cmp(&b.0));
            match next {
                Some((when, id)) if when <= arrival => {
                    let e = &mut engines[id.index()];
                    e.advance_to(when);
                    e.reap_finished(when);
                    e.reschedule(when);
                }
                _ => break,
            }
        }
        let stream = Stream::new(
            StreamId(i as u64),
            VideoId(vid as u32),
            size,
            VIEW,
            client,
            arrival,
        );
        let (admission, touched) = controller.admit(stream, &mut engines, &map, arrival, &mut rng);
        for sid in &touched {
            let e = &mut engines[sid.index()];
            e.advance_to(arrival);
            e.reschedule(arrival);
        }
        controller.stats.check();
        for e in &engines {
            e.check_invariants();
            assert!(e.active_count() <= slots, "server over its slot count");
            for s in e.streams() {
                assert!(
                    map.holds(e.id(), s.video),
                    "stream {} for {} placed on non-holder {}",
                    s.id,
                    s.video,
                    e.id()
                );
                assert!(s.hops == 0, "hop budget exceeded: {}", s.hops);
            }
        }
        assert!(
            !matches!(admission, Admission::WithMigration { .. }),
            "migration fired while disabled"
        );
    }
    assert_eq!(controller.stats.arrivals, arrivals.len() as u64);
    assert_eq!(controller.stats.accepted_via_migration, 0);
}

/// Runs a single-server minimum-flow simulation and returns the number of
/// accepted requests (mirrors `tests/theorem1_eftf_optimality.rs`).
fn run_single_server(
    kind: SchedulerKind,
    capacity: f64,
    reqs: &[(f64, f64)],
    client: ClientProfile,
) -> usize {
    let mut engine = ServerEngine::new(ServerId(0), capacity, kind);
    let mut clock = SimTime::ZERO;
    let mut accepted = 0usize;
    let mut t = 0.0;
    for (i, &(gap, size_mb)) in reqs.iter().enumerate() {
        t += gap;
        let arrival = SimTime::from_secs(t);
        while let Some((when, _)) = engine.next_event_after(clock) {
            if when > arrival {
                break;
            }
            engine.advance_to(when);
            engine.reap_finished(when);
            engine.reschedule(when);
            clock = when;
        }
        engine.advance_to(arrival);
        engine.reap_finished(arrival);
        clock = arrival;
        if engine.can_admit(VIEW) {
            let stream = Stream::new(
                StreamId(i as u64),
                VideoId(i as u32),
                size_mb,
                VIEW,
                client,
                arrival,
            );
            engine.admit(stream, arrival);
            accepted += 1;
        } else {
            engine.reschedule(arrival);
        }
    }
    accepted
}

/// The shrunken `theorem1_eftf_optimality` scenario: an 8-request trace
/// with zero-gap arrivals and a tail of 30 Mb clips.
#[test]
fn theorem1_regression_seed_e941a27d() {
    let reqs: [(f64, f64); 8] = [
        (0.0, 226.66574784569778),
        (4.559067464505736, 590.4488198724822),
        (5.915176078536567, 554.7679686959544),
        (22.649397433209266, 443.98241838535205),
        (0.0, 437.3056052058279),
        (47.62326748408694, 30.0),
        (0.0, 30.0),
        (34.47306875658756, 30.0),
    ];
    let capacity = 12.0; // 4 slots
    let client = ClientProfile::unbounded();
    let eftf = run_single_server(SchedulerKind::Eftf, capacity, &reqs, client);
    for kind in SchedulerKind::ALL {
        let n = run_single_server(kind, capacity, &reqs, client);
        assert!(n >= 1, "{kind:?} must accept into an idle server");
        assert!(n <= reqs.len());
        if n == reqs.len() {
            assert_eq!(
                eftf,
                reqs.len(),
                "{kind:?} accommodated all {} requests but EFTF only {eftf}",
                reqs.len()
            );
        }
    }
}
