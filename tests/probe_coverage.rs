//! Exhaustiveness guard: every [`SimEvent`] variant must decide its
//! probe semantics.
//!
//! The built-in folds — [`MetricsProbe`] (aggregate counters) and
//! [`SpanProbe`] (request-lifecycle spans) — each consume a specific
//! subset of the event stream. Nothing in the type system forces a new
//! variant through that decision: `MetricsProbe` ends its match with a
//! wildcard, and a probe that simply ignores an event compiles fine.
//! This test closes the gap with a wildcard-free `match`: adding a
//! variant to `SimEvent` fails compilation here until someone states,
//! in [`coverage`], which probes fold it (or that ignoring it is
//! deliberate), and extends [`sample`] so the runtime checks exercise
//! the new arm.

use sct_simcore::SimTime;
use semi_continuous_vod::prelude::*;

/// What each built-in probe does with one event variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Coverage {
    kind: &'static str,
    /// `MetricsProbe` folds it into a counter/sample.
    metrics: bool,
    /// `SpanProbe` folds it into a span, segment, edge, or mark.
    spans: bool,
    /// `CrossShardCounter` folds it into a locality counter. This is
    /// the opt-in analysis fold for loop plumbing: exactly one variant
    /// sets it, and the outcome-affecting probes above must keep
    /// ignoring that variant so results stay shard-invariant.
    locality: bool,
}

/// The decision table. NO WILDCARD ARM — that is the point: a new
/// `SimEvent` variant must be classified here before this file
/// compiles.
fn coverage(event: &SimEvent) -> Coverage {
    match event {
        SimEvent::Admitted { .. } => Coverage {
            kind: "Admitted",
            metrics: true, // per-video arrival counters
            spans: true,   // opens the viewer span
            locality: false,
        },
        SimEvent::Rejected { .. } => Coverage {
            kind: "Rejected",
            metrics: true,
            spans: true,
            locality: false,
        },
        SimEvent::Completed { .. } => Coverage {
            kind: "Completed",
            metrics: true,
            spans: true,
            locality: false,
        },
        SimEvent::Migrated { .. } => Coverage {
            kind: "Migrated",
            metrics: false, // aggregate hop counts live in AdmissionStats
            spans: true,    // hop segment + causal edge
            locality: false,
        },
        SimEvent::ServerDown { .. } => Coverage {
            kind: "ServerDown",
            metrics: true,
            spans: true, // mark + evacuation/drop attribution
            locality: false,
        },
        SimEvent::ServerUp { .. } => Coverage {
            kind: "ServerUp",
            metrics: false,
            spans: true, // mark + freed-capacity cause
            locality: false,
        },
        SimEvent::Paused { .. } => Coverage {
            kind: "Paused",
            metrics: true,
            spans: true,
            locality: false,
        },
        SimEvent::Resumed { .. } => Coverage {
            kind: "Resumed",
            metrics: false, // resume count equals pause count
            spans: true,
            locality: false,
        },
        SimEvent::CopyStarted { .. } => Coverage {
            kind: "CopyStarted",
            metrics: false, // replication totals live in AdmissionStats
            spans: true,    // opens the copy span
            locality: false,
        },
        SimEvent::CopyDone { .. } => Coverage {
            kind: "CopyDone",
            metrics: false,
            spans: true,
            locality: false,
        },
        SimEvent::WaitlistQueued { .. } => Coverage {
            kind: "WaitlistQueued",
            metrics: false, // waitlist totals live in WaitlistStats
            spans: true,    // wait segment
            locality: false,
        },
        SimEvent::WaitlistServed { .. } => Coverage {
            kind: "WaitlistServed",
            metrics: false,
            spans: true, // serve segment + FreedSlot edge
            locality: false,
        },
        SimEvent::WaitlistExpired { .. } => Coverage {
            kind: "WaitlistExpired",
            metrics: false,
            spans: true, // closes the longest-waiting spans
            locality: false,
        },
        SimEvent::WindowSample { .. } => Coverage {
            kind: "WindowSample",
            metrics: true, // windowed-utilization series
            spans: false,  // no request is involved
            locality: false,
        },
        SimEvent::CrossShard { .. } => Coverage {
            kind: "CrossShard",
            // Loop plumbing, deliberately ignored by both folds: the
            // underlying Migrated/CopyStarted events carry the causal
            // edges, so outcomes and span sets stay identical across
            // shard counts. Trace probes still record the channel, and
            // the opt-in CrossShardCounter tallies it by edge kind.
            metrics: false,
            spans: false,
            locality: true,
        },
    }
}

/// One concrete event per variant, in declaration order.
fn sample() -> Vec<SimEvent> {
    vec![
        SimEvent::Admitted {
            stream: 0,
            video: 0,
            server: 0,
            path: AdmitPath::Direct,
        },
        SimEvent::Rejected {
            stream: 1,
            video: 0,
        },
        SimEvent::Completed {
            stream: 0,
            server: 0,
        },
        SimEvent::Migrated {
            stream: 0,
            from: 0,
            to: 1,
            emergency: false,
        },
        SimEvent::ServerDown {
            server: 0,
            relocated: 0,
            dropped: 0,
        },
        SimEvent::ServerUp { server: 0 },
        SimEvent::Paused {
            stream: 0,
            server: 1,
        },
        SimEvent::Resumed {
            stream: 0,
            server: 1,
        },
        SimEvent::CopyStarted {
            copy: 2,
            video: 1,
            tertiary: false,
        },
        SimEvent::CopyDone {
            copy: 2,
            installed: true,
        },
        SimEvent::WaitlistQueued {
            stream: 3,
            video: 0,
        },
        SimEvent::WaitlistServed {
            stream: 3,
            video: 0,
            server: 0,
            batched: false,
            waited_secs: 5.0,
        },
        SimEvent::WaitlistExpired { count: 1 },
        SimEvent::WindowSample {
            index: 0,
            utilization: 0.5,
        },
        SimEvent::CrossShard {
            stream: 0,
            from: 0,
            to: 1,
            from_shard: 0,
            to_shard: 1,
            edge: CrossShardEdge::Displacement,
        },
    ]
}

#[test]
fn sample_covers_every_event_kind_exactly_once() {
    let kinds: Vec<&str> = sample().iter().map(|e| e.kind()).collect();
    assert_eq!(
        kinds,
        SimEvent::KINDS.to_vec(),
        "sample() must list one event per SimEvent variant, in order"
    );
    // The decision table agrees with the canonical kind strings.
    for event in &sample() {
        assert_eq!(coverage(event).kind, event.kind());
    }
}

#[test]
fn metrics_probe_folds_exactly_the_variants_it_claims() {
    for event in &sample() {
        let mut probe = MetricsProbe::new(4, true);
        let before = probe.clone();
        probe.on_event(SimTime::from_secs(1.0), event);
        let changed = probe != before;
        assert_eq!(
            changed,
            coverage(event).metrics,
            "{}: MetricsProbe fold disagrees with the coverage table",
            event.kind()
        );
    }
}

#[test]
fn cross_shard_counter_folds_exactly_the_variants_it_claims() {
    for event in &sample() {
        let mut probe = CrossShardCounter::new();
        let before = probe;
        probe.on_event(SimTime::from_secs(1.0), event);
        let changed = probe != before;
        assert_eq!(
            changed,
            coverage(event).locality,
            "{}: CrossShardCounter fold disagrees with the coverage table",
            event.kind()
        );
    }
}

#[test]
fn cross_shard_counter_tallies_by_edge_kind() {
    let mut probe = CrossShardCounter::new();
    let edges = [
        (CrossShardEdge::Displacement, 3),
        (CrossShardEdge::ChainInnerHop, 2),
        (CrossShardEdge::ReplicationCopy, 1),
        (CrossShardEdge::EvacuationRescue, 4),
    ];
    for (edge, n) in edges {
        for _ in 0..n {
            probe.on_event(
                SimTime::from_secs(1.0),
                &SimEvent::CrossShard {
                    stream: 0,
                    from: 0,
                    to: 1,
                    from_shard: 0,
                    to_shard: 1,
                    edge,
                },
            );
        }
    }
    assert_eq!(probe.total, 10);
    assert_eq!(probe.displacements, 3);
    assert_eq!(probe.chain_inner_hops, 2);
    assert_eq!(probe.replication_copies, 1);
    assert_eq!(probe.evacuation_rescues, 4);
}

#[test]
fn span_probe_folds_exactly_the_variants_it_claims() {
    for event in &sample() {
        // Feed enough preamble that the event under test has a span to
        // act on, then check whether it changed the fold's output.
        let preamble = |probe: &mut SpanProbe| {
            probe.on_event(
                SimTime::from_secs(0.0),
                &SimEvent::Admitted {
                    stream: 0,
                    video: 0,
                    server: 0,
                    path: AdmitPath::Direct,
                },
            );
            probe.on_event(
                SimTime::from_secs(0.0),
                &SimEvent::CopyStarted {
                    copy: 2,
                    video: 1,
                    tertiary: false,
                },
            );
            probe.on_event(
                SimTime::from_secs(0.0),
                &SimEvent::WaitlistQueued {
                    stream: 3,
                    video: 0,
                },
            );
        };
        let mut bare = SpanProbe::new();
        preamble(&mut bare);
        let mut probe = SpanProbe::new();
        preamble(&mut probe);
        probe.on_event(SimTime::from_secs(1.0), event);
        let changed = probe.finish(10.0) != bare.finish(10.0);
        assert_eq!(
            changed,
            coverage(event).spans,
            "{}: SpanProbe fold disagrees with the coverage table",
            event.kind()
        );
    }
}
