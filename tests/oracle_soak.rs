//! Long-horizon oracle soak: multi-hour drains and an extended seed
//! matrix, affordable only because the exact event-boundary stepper's
//! cost is O(#events) rather than O(simulated duration).
//!
//! Every test here is `#[ignore]` so the default `cargo test -q` tier
//! stays fast; the dedicated CI soak job runs them in release mode with
//! `cargo test --release --test oracle_soak -- --ignored`.

use sct_cluster::ServerId;
use sct_core::oracle::{
    default_stepper, run_differential, run_differential_with_stepper, OracleScenario, RefStepper,
    TraceOp,
};
use sct_media::{ClientProfile, VideoId};
use sct_simcore::SimTime;
use sct_transmission::SchedulerKind;

/// A pinned drain scenario: one short companion clip (done at t = 100)
/// and one `hours`-long viewer at exactly the view rate (no staging, so
/// transmission cannot run ahead of the clock). The replay must carry
/// the reference through the whole multi-hour tail.
fn lone_drain(hours: f64) -> OracleScenario {
    let size_mb = hours * 3600.0 * 3.0;
    OracleScenario {
        seed: 0x50AD,
        n_servers: 2,
        slots_per_server: 3,
        view_rate: 3.0,
        scheduler: SchedulerKind::Eftf,
        migration_on: false,
        chain2_on: false,
        restart_on: false,
        client: ClientProfile::no_staging(30.0),
        holders: vec![vec![ServerId(0)], vec![ServerId(0), ServerId(1)]],
        replication: None,
        waitlist: None,
        trace: vec![
            (
                SimTime::ZERO,
                TraceOp::Arrival {
                    video: VideoId(1),
                    size_mb: 300.0,
                },
            ),
            (
                SimTime::ZERO,
                TraceOp::Arrival {
                    video: VideoId(0),
                    size_mb,
                },
            ),
        ],
    }
}

#[test]
#[ignore = "long-horizon soak; run via the CI soak job (--release -- --ignored)"]
fn two_hour_drain_is_divergence_free() {
    let sc = lone_drain(2.0);
    let out = run_differential(&sc).unwrap_or_else(|d| panic!("{d}"));
    assert_eq!(out.arrivals, 2);
    assert_eq!(out.completions, 2);
    if default_stepper() == RefStepper::Exact {
        // Two streams, a handful of boundaries: the 7 200 simulated
        // seconds must cost a fixed handful of closed-form slices.
        assert!(
            out.ref_slices <= 64,
            "{} slices for a lone two-hour drain",
            out.ref_slices
        );
    }
}

#[test]
#[ignore = "long-horizon soak; run via the CI soak job (--release -- --ignored)"]
fn slice_count_is_independent_of_horizon() {
    let two = run_differential_with_stepper(&lone_drain(2.0), RefStepper::Exact)
        .unwrap_or_else(|d| panic!("2 h: {d}"));
    let eight = run_differential_with_stepper(&lone_drain(8.0), RefStepper::Exact)
        .unwrap_or_else(|d| panic!("8 h: {d}"));
    // Same event structure, 4× the simulated duration, identical slice
    // count: replay cost is a function of events, not of hours.
    assert_eq!(
        two.ref_slices, eight.ref_slices,
        "exact stepper slice count must not scale with the horizon"
    );
}

#[test]
#[ignore = "long-horizon soak; run via the CI soak job (--release -- --ignored)"]
fn two_hour_drain_agrees_with_naive_spot_check() {
    let exact = run_differential_with_stepper(&lone_drain(2.0), RefStepper::Exact)
        .unwrap_or_else(|d| panic!("exact: {d}"));
    let naive =
        run_differential_with_stepper(&lone_drain(2.0), RefStepper::Naive { dt_secs: 0.16 })
            .unwrap_or_else(|d| panic!("naive: {d}"));
    let mut counters = naive;
    counters.ref_slices = exact.ref_slices;
    assert_eq!(exact, counters);
    assert!(
        exact.ref_slices < naive.ref_slices / 100,
        "exact took {} slices, naive {} — expected orders of magnitude apart",
        exact.ref_slices,
        naive.ref_slices
    );
}

#[test]
#[ignore = "long-horizon soak; run via the CI soak job (--release -- --ignored)"]
fn extended_seed_matrix_soaks_clean() {
    for seed in 0..256u64 {
        let sc = OracleScenario::generate(seed);
        if let Err(d) = run_differential(&sc) {
            panic!("{d}");
        }
    }
}
