//! Proptest-driven scenario fuzzer for the differential oracle.
//!
//! Instead of replaying only generator-shaped scenarios
//! (`OracleScenario::generate`), this layer builds **arbitrary valid
//! `TraceOp` sequences** — admissions, pauses, resumes, failures,
//! repairs, and replication directives over random topologies, clients,
//! schedulers, and migration policies (off / single-hop / chain-2) — and
//! requires every one of them to replay divergence-free. On a failure
//! the trace is delta-debugged first ([`shrink_divergence`]), so what
//! gets reported is a *minimal* replayable (seed, time, stream) triple
//! plus the shrunken scenario literal to pin as a regression (see
//! README, "Fuzzing the oracle").
//!
//! The second property pins the exact stepper's crossing-time solver:
//! no slice may ever step past the event horizon, a stream-finish
//! crossing, or a playout-end crossing.

use proptest::prelude::*;
use sct_admission::{CopySource, ReplicationSpec, WaitlistSpec};
use sct_cluster::ServerId;
use sct_core::oracle::{
    exact_slice, shrink_divergence, OracleScenario, SliceState, TraceOp, EPS_SECS,
};
use sct_media::{ClientProfile, VideoId};
use sct_simcore::SimTime;
use sct_transmission::{SchedulerKind, StreamId, EPS_MB};

/// A raw fuzz plan: free-form knobs that [`Plan::build`] legalizes into
/// a replayable [`OracleScenario`]. Legalization (rather than filtering)
/// keeps every generated value useful: fail/repair ops are paired
/// against the live online set, selectors are reduced modulo the
/// applicable range, and op kinds that need an absent extension are
/// dropped.
#[derive(Clone, Debug)]
struct Plan {
    n_servers: usize,
    slots: usize,
    /// For each video: bitmask of holder servers (at least one bit).
    videos: Vec<u8>,
    /// 0 = unbounded staging, 1 = no staging, 2 = bounded.
    client: u8,
    scheduler: usize,
    /// 0 = migration off, 1 = single hop, 2 = two-step chains.
    migration: u8,
    replication_on: bool,
    waitlist_on: bool,
    /// Raw ops: (gap seconds, kind, selector, size Mb).
    ops: Vec<(f64, u8, u64, f64)>,
    seed: u64,
}

impl Plan {
    fn build(&self) -> OracleScenario {
        let n = self.n_servers;
        let holders: Vec<Vec<ServerId>> = self
            .videos
            .iter()
            .map(|&mask| {
                (0..n as u16)
                    .filter(|s| mask & (1 << s) != 0)
                    .map(ServerId)
                    .collect()
            })
            .collect();
        let mut online = vec![true; n];
        let mut trace: Vec<(SimTime, TraceOp)> = Vec::with_capacity(self.ops.len());
        let mut arrivals = 0u64;
        let mut t = 0.0f64;
        for &(gap, kind, sel, size) in &self.ops {
            t += gap;
            let now = SimTime::from_secs(t);
            match kind % 8 {
                // Arrivals dominate (three kinds map here) so traces
                // carry enough load for the other ops to matter.
                0..=2 => {
                    let video = VideoId((sel % self.videos.len() as u64) as u32);
                    trace.push((
                        now,
                        TraceOp::Arrival {
                            video,
                            size_mb: size,
                        },
                    ));
                    arrivals += 1;
                }
                // Pause/resume target arrival indices; ids at or past
                // the arrival count exercise the no-op paths.
                3 => trace.push((now, TraceOp::Pause(StreamId(sel % (arrivals + 2))))),
                4 => trace.push((now, TraceOp::Resume(StreamId(sel % (arrivals + 2))))),
                // Fail an online server / repair a failed one. Skipped
                // when replication is armed: evacuating an in-flight
                // copy strands the manager's bookkeeping, interplay the
                // reference deliberately does not model (see the
                // scenario generator).
                5 if !self.replication_on => {
                    let up: Vec<usize> = (0..n).filter(|&s| online[s]).collect();
                    if let Some(&victim) = up.get((sel % up.len().max(1) as u64) as usize) {
                        online[victim] = false;
                        trace.push((now, TraceOp::Fail(ServerId(victim as u16))));
                    }
                }
                6 if !self.replication_on => {
                    let down: Vec<usize> = (0..n).filter(|&s| !online[s]).collect();
                    if !down.is_empty() {
                        let victim = down[(sel % down.len() as u64) as usize];
                        online[victim] = true;
                        trace.push((now, TraceOp::Repair(ServerId(victim as u16))));
                    }
                }
                7 if self.replication_on => {
                    let video = VideoId((sel % self.videos.len() as u64) as u32);
                    trace.push((
                        now,
                        TraceOp::StartCopy {
                            video,
                            size_mb: 30.0 + (size - 30.0) * 0.25,
                        },
                    ));
                }
                _ => {}
            }
        }
        let migration_on = self.migration > 0;
        OracleScenario {
            seed: self.seed,
            n_servers: n,
            slots_per_server: self.slots,
            view_rate: 3.0,
            scheduler: SchedulerKind::ALL[self.scheduler % 4],
            migration_on,
            chain2_on: migration_on && self.migration == 2,
            restart_on: false,
            client: match self.client % 3 {
                0 => ClientProfile::unbounded(),
                1 => ClientProfile::no_staging(30.0),
                _ => ClientProfile::new(200.0, 30.0),
            },
            holders,
            replication: self.replication_on.then_some(ReplicationSpec {
                copy_rate_mbps: 6.0,
                max_concurrent: 2,
                cooldown_secs: 10.0,
                source: CopySource::Cluster,
            }),
            waitlist: self.waitlist_on.then(|| WaitlistSpec::new(90.0, 6)),
            trace,
        }
    }
}

fn plan() -> impl Strategy<Value = Plan> {
    (2usize..5, 2usize..6).prop_flat_map(|(n_servers, slots)| {
        (1usize..8).prop_flat_map(move |nv| {
            (
                prop::collection::vec(1u8..(1u8 << n_servers), nv..=nv),
                (0u8..3, 0usize..4, 0u8..3),
                prop::bool::ANY,
                prop::bool::ANY,
                prop::collection::vec((0.0f64..25.0, 0u8..8, any::<u64>(), 30.0f64..900.0), 1..40),
                any::<u64>(),
            )
                .prop_map(
                    move |(
                        videos,
                        (client, scheduler, migration),
                        replication_on,
                        waitlist_on,
                        ops,
                        seed,
                    )| Plan {
                        n_servers,
                        slots,
                        videos,
                        client,
                        scheduler,
                        migration,
                        replication_on,
                        waitlist_on,
                        ops,
                        seed,
                    },
                )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Core fuzz property: every legal op sequence replays through the
    /// engines and the reference with zero divergences. A failure is
    /// reported as a minimal shrunken scenario — paste its trace into a
    /// pinned test in `tests/differential_oracle.rs` to lock it in.
    #[test]
    fn fuzzed_scenarios_replay_divergence_free(plan in plan()) {
        let sc = plan.build();
        if let Some((min, d)) = shrink_divergence(&sc) {
            prop_assert!(
                false,
                "divergence (trace shrunk {} → {} ops): {}\nminimal scenario: {:#?}",
                sc.trace.len(),
                min.trace.len(),
                d,
                min
            );
        }
    }

    /// The crossing-time solver never steps past the event horizon, a
    /// stream-finish crossing, or a playout-end crossing — and always
    /// makes positive progress.
    #[test]
    fn exact_slice_never_steps_past_a_boundary(
        left in 1.0e-3f64..1.0e4,
        raw in prop::collection::vec(
            (0.0f64..40.0, 0.0f64..2_000.0, prop::bool::ANY, 0.0f64..2_000.0),
            0..12,
        ),
    ) {
        let states: Vec<SliceState> = raw
            .iter()
            .map(|&(rate, remaining_mb, paused, play_left_secs)| SliceState {
                rate,
                remaining_mb,
                paused,
                play_left_secs,
            })
            .collect();
        let dt = exact_slice(left, &states);
        prop_assert!(dt > 0.0, "a slice must make progress");
        prop_assert!(dt <= left, "stepped past the event horizon");
        for s in &states {
            if s.rate > 0.0 && s.remaining_mb > EPS_MB {
                prop_assert!(
                    dt * s.rate <= s.remaining_mb * (1.0 + 1e-12),
                    "stepped past a stream-finish crossing: dt={dt} rate={} rem={}",
                    s.rate,
                    s.remaining_mb
                );
            }
            if !s.paused && s.play_left_secs > EPS_SECS {
                prop_assert!(
                    dt <= s.play_left_secs,
                    "stepped past a playout-end crossing: dt={dt} left={}",
                    s.play_left_secs
                );
            }
        }
    }
}
