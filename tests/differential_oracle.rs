//! Differential testing: the event-driven simulator vs the naive
//! fixed-timestep reference oracle (`sct_core::oracle`).
//!
//! Every scenario replays the same arrival/failure trace through both
//! simulators and cross-checks per-stream sent volumes, rates, and staging
//! occupancy, per-server commitment ledgers, admission legality, the
//! minimum-flow guarantee, and global data conservation at every event
//! boundary. A failure prints a replayable `(seed, time, stream)` triple.

use sct_admission::{CopySource, ReplicationSpec, WaitlistSpec};
use sct_cluster::ServerId;
use sct_core::oracle::{
    run_differential, run_differential_with_fault, FaultInjection, OracleScenario, TraceOp,
};
use sct_media::{ClientProfile, VideoId};
use sct_simcore::SimTime;
use sct_transmission::{SchedulerKind, StreamId};

/// The acceptance bar from the issue: at least 100 random scenarios, all
/// four scheduler kinds, migration both on and off, zero divergences.
#[test]
fn random_scenarios_produce_zero_divergences() {
    let mut combo_seen = [false; 8];
    let mut arrivals = 0u64;
    let mut accepted = 0u64;
    let mut pause_scenarios = 0u64;
    let mut pauses_applied = 0u64;
    let mut copy_scenarios = 0u64;
    let mut copies_completed = 0u64;
    let mut waitlist_scenarios = 0u64;
    let mut waitlisted = 0u64;
    let mut waiters_served = 0u64;
    for seed in 0..104u64 {
        let sc = OracleScenario::generate(seed);
        let combo = (seed % 4) as usize * 2 + usize::from(sc.migration_on);
        combo_seen[combo] = true;
        if sc
            .trace
            .iter()
            .any(|(_, op)| matches!(op, TraceOp::Pause(_)))
        {
            pause_scenarios += 1;
        }
        copy_scenarios += u64::from(sc.replication.is_some());
        waitlist_scenarios += u64::from(sc.waitlist.is_some());
        match run_differential(&sc) {
            Ok(out) => {
                arrivals += out.arrivals;
                accepted += out.accepted_direct + out.accepted_via_migration;
                pauses_applied += out.pauses_applied;
                copies_completed += out.copies_completed;
                waitlisted += out.waitlisted;
                waiters_served += out.waiters_served;
            }
            Err(d) => panic!("{d}"),
        }
    }
    assert!(
        combo_seen.iter().all(|&b| b),
        "seed matrix must cover every (scheduler, migration) combination"
    );
    // The generator would be vacuous if nothing were ever admitted.
    assert!(accepted > 0 && arrivals >= 104 * 10);
    // ... or if the interactivity path were never exercised: a healthy
    // share of scenarios must schedule pauses, and some of those must
    // land on live streams (not just no-op against finished ones).
    assert!(
        pause_scenarios >= 104 / 4,
        "only {pause_scenarios}/104 scenarios contained a pause"
    );
    assert!(
        pauses_applied > 0,
        "no pause ever landed on a live stream across the matrix"
    );
    // The replication and waitlist extensions must be represented in the
    // matrix AND actually fire somewhere: a copy has to complete (so the
    // CopyDone → replica-map path is cross-checked), and some waiter has
    // to be re-admitted off the queue mid-replay.
    assert!(
        copy_scenarios >= 104 / 4,
        "only {copy_scenarios}/104 scenarios enabled replication"
    );
    assert!(
        copies_completed > 0,
        "no replica copy ever completed across the matrix"
    );
    assert!(
        waitlist_scenarios >= 104 / 4,
        "only {waitlist_scenarios}/104 scenarios enabled the waitlist"
    );
    assert!(
        waitlisted > 0 && waiters_served > 0,
        "the waitlist never served anyone across the matrix \
         (queued {waitlisted}, served {waiters_served})"
    );
}

/// Pause/resume semantics pinned down on a hand-built trace: a paused
/// viewer stops playing (and, with no staging, stops receiving), so the
/// stream's service time stretches by the pause; the reference and the
/// engines must agree on every intermediate volume.
#[test]
fn pinned_pause_resume_scenario_passes_the_oracle() {
    for scheduler in SchedulerKind::ALL {
        let sc = OracleScenario {
            seed: 0x9A05E,
            n_servers: 2,
            slots_per_server: 3,
            view_rate: 3.0,
            scheduler,
            migration_on: false,
            client: ClientProfile::no_staging(30.0),
            holders: vec![vec![ServerId(0)], vec![ServerId(0), ServerId(1)]],
            replication: None,
            waitlist: None,
            trace: vec![
                (
                    SimTime::ZERO,
                    TraceOp::Arrival {
                        video: VideoId(0),
                        size_mb: 300.0,
                    },
                ),
                (
                    SimTime::from_secs(5.0),
                    TraceOp::Arrival {
                        video: VideoId(1),
                        size_mb: 120.0,
                    },
                ),
                // Stream 0 pauses mid-play and resumes a minute later.
                (SimTime::from_secs(20.0), TraceOp::Pause(StreamId(0))),
                // Stream 1 finishes at t = 45; this pause is a no-op.
                (SimTime::from_secs(50.0), TraceOp::Pause(StreamId(1))),
                (SimTime::from_secs(60.0), TraceOp::Resume(StreamId(1))),
                // A never-admitted id is a no-op too.
                (SimTime::from_secs(70.0), TraceOp::Pause(StreamId(99))),
                (SimTime::from_secs(80.0), TraceOp::Resume(StreamId(0))),
            ],
        };
        let out = run_differential(&sc).unwrap_or_else(|d| panic!("{scheduler:?}: {d}"));
        assert_eq!(out.arrivals, 2, "{scheduler:?}");
        assert_eq!(out.accepted_direct, 2, "{scheduler:?}");
        assert_eq!(out.completions, 2, "{scheduler:?}");
        assert_eq!(
            out.pauses_applied, 2,
            "{scheduler:?}: exactly stream 0's pause and resume land"
        );
    }
}

/// The shrunken `controller_props` regression scenario (seed bd871fc3 in
/// `.proptest-regressions`, pinned as values in
/// `tests/regression_scenarios.rs`) replayed under the oracle: the same
/// trace must also survive full differential cross-checking.
#[test]
fn controller_props_regression_scenario_passes_the_oracle() {
    let sc = OracleScenario {
        seed: 0xbd871fc3,
        n_servers: 2,
        slots_per_server: 5,
        view_rate: 3.0,
        scheduler: SchedulerKind::Eftf,
        migration_on: false,
        client: ClientProfile::new(300.0, 30.0),
        holders: vec![vec![ServerId(0)], vec![ServerId(1)]],
        replication: None,
        waitlist: None,
        trace: vec![
            (
                SimTime::ZERO,
                TraceOp::Arrival {
                    video: VideoId(1),
                    size_mb: 593.9863875361672,
                },
            ),
            (
                SimTime::ZERO,
                TraceOp::Arrival {
                    video: VideoId(0),
                    size_mb: 60.0,
                },
            ),
            (
                SimTime::from_secs(31.163592067570615),
                TraceOp::Arrival {
                    video: VideoId(0),
                    size_mb: 60.0,
                },
            ),
        ],
    };
    let out = run_differential(&sc).unwrap_or_else(|d| panic!("{d}"));
    assert_eq!(out.arrivals, 3);
    assert_eq!(out.accepted_direct, 3);
    assert_eq!(out.accepted_via_migration, 0);
    assert_eq!(out.rejected, 0);
    assert_eq!(out.completions, 3);
}

/// The shrunken `theorem1_eftf_optimality` regression scenario (seed
/// e941a27d) replayed under the oracle, for every scheduler kind: a
/// single unbounded-client server with zero-gap arrivals and a tail of
/// minimum-size clips.
#[test]
fn theorem1_regression_scenario_passes_the_oracle() {
    let reqs: [(f64, f64); 8] = [
        (0.0, 226.66574784569778),
        (4.559067464505736, 590.4488198724822),
        (5.915176078536567, 554.7679686959544),
        (22.649397433209266, 443.98241838535205),
        (0.0, 437.3056052058279),
        (47.62326748408694, 30.0),
        (0.0, 30.0),
        (34.47306875658756, 30.0),
    ];
    for scheduler in SchedulerKind::ALL {
        let mut t = 0.0;
        let mut trace = Vec::new();
        for (i, &(gap, size_mb)) in reqs.iter().enumerate() {
            t += gap;
            trace.push((
                SimTime::from_secs(t),
                TraceOp::Arrival {
                    video: VideoId(i as u32),
                    size_mb,
                },
            ));
        }
        let sc = OracleScenario {
            seed: 0xe941a27d,
            n_servers: 1,
            slots_per_server: 4,
            view_rate: 3.0,
            scheduler,
            migration_on: false,
            client: ClientProfile::unbounded(),
            holders: (0..reqs.len()).map(|_| vec![ServerId(0)]).collect(),
            replication: None,
            waitlist: None,
            trace,
        };
        let out = run_differential(&sc).unwrap_or_else(|d| panic!("{scheduler:?}: {d}"));
        assert_eq!(out.arrivals, 8, "{scheduler:?}");
        assert_eq!(
            out.accepted_direct + out.rejected,
            8,
            "{scheduler:?}: no migration path exists on one server"
        );
        assert_eq!(out.completions, out.accepted_direct, "{scheduler:?}");
    }
}

/// A deliberately injected allocator bug — a stream's rate silently
/// perturbed without reallocation, exactly what a broken scheduler would
/// do — must be caught and localized to a (seed, time, stream) triple.
#[test]
fn injected_allocator_bug_is_caught_and_localized() {
    let mut caught = 0usize;
    for seed in 0..8u64 {
        let sc = OracleScenario::generate(seed);
        // Clean run first: the fault must be the only difference.
        let clean = run_differential(&sc).unwrap_or_else(|d| panic!("clean run diverged: {d}"));
        let accepted = clean.accepted_direct + clean.accepted_via_migration;
        assert!(accepted > 0, "vacuous scenario");
        // Corrupt after the LAST admission: no later admission can
        // trigger a reallocation that overwrites the bad rate before a
        // cross-check sees it. (Injected right before a simultaneous
        // admission to the same server, a corruption is healed with zero
        // observable effect — correctly nothing to report.)
        let fault = FaultInjection {
            at_arrival: accepted - 1,
            delta_mbps: 0.75,
        };
        let d = run_differential_with_fault(&sc, Some(fault)).expect_err(&format!(
            "seed {seed} ({:?}, migration={}): a silently corrupted rate must be reported",
            sc.scheduler, sc.migration_on
        ));
        assert_eq!(d.seed, seed, "report must carry the scenario seed");
        assert!(
            d.stream.is_some() || d.server.is_some(),
            "report must localize the fault: {d}"
        );
        let horizon = sc.trace.last().map(|(t, _)| *t).unwrap_or(SimTime::ZERO) + 1.0e7;
        assert!(d.time <= horizon, "report time out of range: {d}");
        // The report must render the replay coordinates.
        let rendered = d.to_string();
        assert!(
            rendered.contains(&format!("seed={seed}")) && rendered.contains("t="),
            "unhelpful report: {rendered}"
        );
        caught += 1;
    }
    assert_eq!(caught, 8);
}

/// Sub-tolerance perturbations must NOT trip the oracle — the comparison
/// is meant to catch real bugs, not float noise.
#[test]
fn sub_tolerance_noise_is_not_reported() {
    let sc = OracleScenario::generate(3);
    let fault = FaultInjection {
        at_arrival: 0,
        delta_mbps: 1e-9,
    };
    if let Err(d) = run_differential_with_fault(&sc, Some(fault)) {
        panic!("1 nMb/s of noise should stay under the tolerance: {d}");
    }
}

/// Cluster-sourced replication pinned on a hand-built trace: a copy of
/// video 0 streams from its sole holder to server 1 at 3 Mb/s (90 Mb →
/// done at t = 30), the reference mirrors the transfer megabit for
/// megabit, and once `CopyDone` installs the replica, an arrival that
/// finds server 0 saturated must be admitted on server 1 — the oracle's
/// own admission-legality check recomputes the eligible set from the
/// *updated* map, so a dropped CopyDone would diverge immediately.
#[test]
fn pinned_replication_copy_scenario_passes_the_oracle() {
    for scheduler in SchedulerKind::ALL {
        let mut trace = vec![
            (
                SimTime::ZERO,
                TraceOp::StartCopy {
                    video: VideoId(0),
                    size_mb: 90.0,
                },
            ),
            // Rides alongside the copy on server 0; finishes at t = 25.
            (
                SimTime::from_secs(5.0),
                TraceOp::Arrival {
                    video: VideoId(0),
                    size_mb: 60.0,
                },
            ),
        ];
        // Three 100-second clips saturate server 0's three slots...
        for _ in 0..3 {
            trace.push((
                SimTime::from_secs(35.0),
                TraceOp::Arrival {
                    video: VideoId(0),
                    size_mb: 300.0,
                },
            ));
        }
        // ... so this one can only land on the fresh replica.
        trace.push((
            SimTime::from_secs(40.0),
            TraceOp::Arrival {
                video: VideoId(0),
                size_mb: 60.0,
            },
        ));
        let sc = OracleScenario {
            seed: 0xC0B1E5,
            n_servers: 2,
            slots_per_server: 3,
            view_rate: 3.0,
            scheduler,
            migration_on: false,
            client: ClientProfile::no_staging(30.0),
            holders: vec![vec![ServerId(0)]],
            replication: Some(ReplicationSpec {
                copy_rate_mbps: 3.0,
                max_concurrent: 1,
                cooldown_secs: 5.0,
                source: CopySource::Cluster,
            }),
            waitlist: None,
            trace,
        };
        let out = run_differential(&sc).unwrap_or_else(|d| panic!("{scheduler:?}: {d}"));
        assert_eq!(out.copies_started, 1, "{scheduler:?}");
        assert_eq!(out.copies_completed, 1, "{scheduler:?}");
        assert_eq!(out.arrivals, 5, "{scheduler:?}");
        assert_eq!(
            out.accepted_direct, 5,
            "{scheduler:?}: the last arrival needs the new replica"
        );
        assert_eq!(out.rejected, 0, "{scheduler:?}");
        assert_eq!(out.completions, 5, "{scheduler:?}");
    }
}

/// Waitlist service pinned on a hand-built trace: one two-slot server,
/// two 20-second clips admitted at t = 0, two more viewers rejected into
/// the queue. When both streams depart at t = 20, `try_serve` re-admits
/// both waiters as fresh streams the reference must pick up mid-replay
/// (playback restarts at the serve time, not at arrival).
#[test]
fn pinned_waitlist_serve_scenario_passes_the_oracle() {
    for scheduler in SchedulerKind::ALL {
        let arrival = |t: f64, size_mb: f64| {
            (
                SimTime::from_secs(t),
                TraceOp::Arrival {
                    video: VideoId(0),
                    size_mb,
                },
            )
        };
        let sc = OracleScenario {
            seed: 0x3A17,
            n_servers: 1,
            slots_per_server: 2,
            view_rate: 3.0,
            scheduler,
            migration_on: false,
            client: ClientProfile::no_staging(30.0),
            holders: vec![vec![ServerId(0)]],
            replication: None,
            waitlist: Some(WaitlistSpec::new(60.0, 4)),
            trace: vec![
                arrival(0.0, 60.0),
                arrival(0.0, 60.0),
                // Both slots taken: these two wait (patience until t+60).
                arrival(1.0, 60.0),
                arrival(2.0, 600.0),
            ],
        };
        let out = run_differential(&sc).unwrap_or_else(|d| panic!("{scheduler:?}: {d}"));
        assert_eq!(out.arrivals, 4, "{scheduler:?}");
        assert_eq!(out.accepted_direct, 2, "{scheduler:?}");
        assert_eq!(out.rejected, 2, "{scheduler:?}");
        assert_eq!(out.waitlisted, 2, "{scheduler:?}");
        assert_eq!(
            out.waiters_served, 2,
            "{scheduler:?}: both waiters fit once the first pair departs"
        );
        assert_eq!(out.waiters_expired, 0, "{scheduler:?}");
        assert_eq!(out.completions, 4, "{scheduler:?}");
    }
}
