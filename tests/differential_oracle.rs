//! Differential testing: the event-driven simulator vs the independent
//! reference oracle (`sct_core::oracle`).
//!
//! Every scenario replays the same arrival/failure trace through both
//! simulators and cross-checks per-stream sent volumes, rates, and staging
//! occupancy, per-server commitment ledgers, admission legality, the
//! minimum-flow guarantee, and global data conservation at every event
//! boundary. A failure prints a replayable `(seed, time, stream)` triple.
//!
//! The reference integrates with the exact event-boundary stepper by
//! default; [`exact_and_naive_steppers_agree_across_the_matrix`] replays
//! the whole matrix under the fixed-Δt spot-check at a shrinking ladder
//! of step sizes and demands identical outcomes.

use sct_admission::{CopySource, ReplicationSpec, WaitlistSpec};
use sct_cluster::ServerId;
use sct_core::oracle::{
    default_stepper, run_differential, run_differential_with_fault, run_differential_with_stepper,
    FaultInjection, OracleScenario, RefStepper, TraceOp, ORACLE_DT_SECS,
};
use sct_media::{ClientProfile, VideoId};
use sct_simcore::SimTime;
use sct_transmission::{SchedulerKind, StreamId};

/// `true` when the generator appended the hours-long lone-drain tail
/// (bit 6 of the seed): one clip of at least 21 600 Mb (2 h at the
/// 3 Mb/s view rate).
fn has_long_drain(sc: &OracleScenario) -> bool {
    sc.trace
        .iter()
        .any(|(_, op)| matches!(op, TraceOp::Arrival { size_mb, .. } if *size_mb >= 21_600.0))
}

/// The acceptance bar from the issue: at least 100 random scenarios, all
/// four scheduler kinds, migration both on and off, chains armed and
/// not, zero divergences.
#[test]
fn random_scenarios_produce_zero_divergences() {
    let mut combo_seen = [false; 8];
    let mut arrivals = 0u64;
    let mut accepted = 0u64;
    let mut pause_scenarios = 0u64;
    let mut pauses_applied = 0u64;
    let mut copy_scenarios = 0u64;
    let mut copies_completed = 0u64;
    let mut waitlist_scenarios = 0u64;
    let mut waitlisted = 0u64;
    let mut waiters_served = 0u64;
    let mut chain_scenarios = 0u64;
    let mut chained = 0u64;
    let mut long_drain_scenarios = 0u64;
    for seed in 0..104u64 {
        let sc = OracleScenario::generate(seed);
        let combo = (seed % 4) as usize * 2 + usize::from(sc.migration_on);
        combo_seen[combo] = true;
        if sc
            .trace
            .iter()
            .any(|(_, op)| matches!(op, TraceOp::Pause(_)))
        {
            pause_scenarios += 1;
        }
        copy_scenarios += u64::from(sc.replication.is_some());
        waitlist_scenarios += u64::from(sc.waitlist.is_some());
        chain_scenarios += u64::from(sc.chain2_on);
        long_drain_scenarios += u64::from(has_long_drain(&sc));
        match run_differential(&sc) {
            Ok(out) => {
                arrivals += out.arrivals;
                accepted +=
                    out.accepted_direct + out.accepted_via_migration + out.accepted_via_chain;
                pauses_applied += out.pauses_applied;
                copies_completed += out.copies_completed;
                waitlisted += out.waitlisted;
                waiters_served += out.waiters_served;
                chained += out.accepted_via_chain;
                if default_stepper() == RefStepper::Exact {
                    // One closed-form slice per boundary plus at most two
                    // crossings per live stream: the slice count is
                    // bounded by the event count, never by simulated
                    // duration — hours-long drains included.
                    assert!(
                        out.ref_slices <= 64 * (out.checks + 1),
                        "seed {seed}: {} slices for {} checks",
                        out.ref_slices,
                        out.checks
                    );
                }
            }
            Err(d) => panic!("{d}"),
        }
    }
    assert!(
        combo_seen.iter().all(|&b| b),
        "seed matrix must cover every (scheduler, migration) combination"
    );
    // The generator would be vacuous if nothing were ever admitted.
    assert!(accepted > 0 && arrivals >= 104 * 10);
    // ... or if the interactivity path were never exercised: a healthy
    // share of scenarios must schedule pauses, and some of those must
    // land on live streams (not just no-op against finished ones).
    assert!(
        pause_scenarios >= 104 / 4,
        "only {pause_scenarios}/104 scenarios contained a pause"
    );
    assert!(
        pauses_applied > 0,
        "no pause ever landed on a live stream across the matrix"
    );
    // The replication and waitlist extensions must be represented in the
    // matrix AND actually fire somewhere: a copy has to complete (so the
    // CopyDone → replica-map path is cross-checked), and some waiter has
    // to be re-admitted off the queue mid-replay.
    assert!(
        copy_scenarios >= 104 / 4,
        "only {copy_scenarios}/104 scenarios enabled replication"
    );
    assert!(
        copies_completed > 0,
        "no replica copy ever completed across the matrix"
    );
    assert!(
        waitlist_scenarios >= 104 / 4,
        "only {waitlist_scenarios}/104 scenarios enabled the waitlist"
    );
    assert!(
        waitlisted > 0 && waiters_served > 0,
        "the waitlist never served anyone across the matrix \
         (queued {waitlisted}, served {waiters_served})"
    );
    // The chain-2 axis (bit 5) must be represented and must actually
    // fire: at least one arrival or assisted waiter placed by a
    // two-step chain somewhere in the matrix.
    assert!(
        chain_scenarios >= 104 / 4,
        "only {chain_scenarios}/104 scenarios armed two-step chains"
    );
    assert!(
        chained > 0,
        "no two-step migration chain ever fired across the matrix"
    );
    // The long-drain axis (bit 6) keeps multi-hour horizons in the
    // default matrix — affordable only because the exact stepper's cost
    // is horizon-independent.
    assert!(
        long_drain_scenarios >= 104 / 4,
        "only {long_drain_scenarios}/104 scenarios carried a long drain"
    );
}

/// Exact-vs-naive stepper agreement over the full matrix, with the naive
/// Δt shrinking toward zero on an affordable subset: the per-slice
/// updates are closed forms, so outcomes must be *identical* at every
/// ladder rung (volume comparisons are cross-checked inside the replay
/// to [`sct_core::oracle::ORACLE_TOL_MB`]), not merely convergent.
#[test]
fn exact_and_naive_steppers_agree_across_the_matrix() {
    for seed in 0..104u64 {
        let sc = OracleScenario::generate(seed);
        let exact = run_differential_with_stepper(&sc, RefStepper::Exact)
            .unwrap_or_else(|d| panic!("seed {seed} exact: {d}"));
        // Coarse rungs everywhere; the production 10 ms step only where
        // the horizon stays short (seeds ≥ 64 carry no multi-hour tail).
        let mut ladder = vec![0.64, 0.31];
        if seed >= 64 && seed.is_multiple_of(4) {
            ladder.push(ORACLE_DT_SECS);
        }
        for dt_secs in ladder {
            let naive = run_differential_with_stepper(&sc, RefStepper::Naive { dt_secs })
                .unwrap_or_else(|d| panic!("seed {seed} naive Δt={dt_secs}: {d}"));
            let mut counters = naive;
            counters.ref_slices = exact.ref_slices;
            assert_eq!(exact, counters, "seed {seed} Δt={dt_secs}");
        }
    }
}

/// Pause/resume semantics pinned down on a hand-built trace: a paused
/// viewer stops playing (and, with no staging, stops receiving), so the
/// stream's service time stretches by the pause; the reference and the
/// engines must agree on every intermediate volume.
#[test]
fn pinned_pause_resume_scenario_passes_the_oracle() {
    for scheduler in SchedulerKind::ALL {
        let sc = OracleScenario {
            seed: 0x9A05E,
            n_servers: 2,
            slots_per_server: 3,
            view_rate: 3.0,
            scheduler,
            migration_on: false,
            chain2_on: false,
            restart_on: false,
            client: ClientProfile::no_staging(30.0),
            holders: vec![vec![ServerId(0)], vec![ServerId(0), ServerId(1)]],
            replication: None,
            waitlist: None,
            trace: vec![
                (
                    SimTime::ZERO,
                    TraceOp::Arrival {
                        video: VideoId(0),
                        size_mb: 300.0,
                    },
                ),
                (
                    SimTime::from_secs(5.0),
                    TraceOp::Arrival {
                        video: VideoId(1),
                        size_mb: 120.0,
                    },
                ),
                // Stream 0 pauses mid-play and resumes a minute later.
                (SimTime::from_secs(20.0), TraceOp::Pause(StreamId(0))),
                // Stream 1 finishes at t = 45; this pause is a no-op.
                (SimTime::from_secs(50.0), TraceOp::Pause(StreamId(1))),
                (SimTime::from_secs(60.0), TraceOp::Resume(StreamId(1))),
                // A never-admitted id is a no-op too.
                (SimTime::from_secs(70.0), TraceOp::Pause(StreamId(99))),
                (SimTime::from_secs(80.0), TraceOp::Resume(StreamId(0))),
            ],
        };
        let out = run_differential(&sc).unwrap_or_else(|d| panic!("{scheduler:?}: {d}"));
        assert_eq!(out.arrivals, 2, "{scheduler:?}");
        assert_eq!(out.accepted_direct, 2, "{scheduler:?}");
        assert_eq!(out.completions, 2, "{scheduler:?}");
        assert_eq!(
            out.pauses_applied, 2,
            "{scheduler:?}: exactly stream 0's pause and resume land"
        );
    }
}

/// The shrunken `controller_props` regression scenario (seed bd871fc3 in
/// `.proptest-regressions`, pinned as values in
/// `tests/regression_scenarios.rs`) replayed under the oracle: the same
/// trace must also survive full differential cross-checking.
#[test]
fn controller_props_regression_scenario_passes_the_oracle() {
    let sc = OracleScenario {
        seed: 0xbd871fc3,
        n_servers: 2,
        slots_per_server: 5,
        view_rate: 3.0,
        scheduler: SchedulerKind::Eftf,
        migration_on: false,
        chain2_on: false,
        restart_on: false,
        client: ClientProfile::new(300.0, 30.0),
        holders: vec![vec![ServerId(0)], vec![ServerId(1)]],
        replication: None,
        waitlist: None,
        trace: vec![
            (
                SimTime::ZERO,
                TraceOp::Arrival {
                    video: VideoId(1),
                    size_mb: 593.9863875361672,
                },
            ),
            (
                SimTime::ZERO,
                TraceOp::Arrival {
                    video: VideoId(0),
                    size_mb: 60.0,
                },
            ),
            (
                SimTime::from_secs(31.163592067570615),
                TraceOp::Arrival {
                    video: VideoId(0),
                    size_mb: 60.0,
                },
            ),
        ],
    };
    let out = run_differential(&sc).unwrap_or_else(|d| panic!("{d}"));
    assert_eq!(out.arrivals, 3);
    assert_eq!(out.accepted_direct, 3);
    assert_eq!(out.accepted_via_migration, 0);
    assert_eq!(out.rejected, 0);
    assert_eq!(out.completions, 3);
}

/// The shrunken `theorem1_eftf_optimality` regression scenario (seed
/// e941a27d) replayed under the oracle, for every scheduler kind: a
/// single unbounded-client server with zero-gap arrivals and a tail of
/// minimum-size clips.
#[test]
fn theorem1_regression_scenario_passes_the_oracle() {
    let reqs: [(f64, f64); 8] = [
        (0.0, 226.66574784569778),
        (4.559067464505736, 590.4488198724822),
        (5.915176078536567, 554.7679686959544),
        (22.649397433209266, 443.98241838535205),
        (0.0, 437.3056052058279),
        (47.62326748408694, 30.0),
        (0.0, 30.0),
        (34.47306875658756, 30.0),
    ];
    for scheduler in SchedulerKind::ALL {
        let mut t = 0.0;
        let mut trace = Vec::new();
        for (i, &(gap, size_mb)) in reqs.iter().enumerate() {
            t += gap;
            trace.push((
                SimTime::from_secs(t),
                TraceOp::Arrival {
                    video: VideoId(i as u32),
                    size_mb,
                },
            ));
        }
        let sc = OracleScenario {
            seed: 0xe941a27d,
            n_servers: 1,
            slots_per_server: 4,
            view_rate: 3.0,
            scheduler,
            migration_on: false,
            chain2_on: false,
            restart_on: false,
            client: ClientProfile::unbounded(),
            holders: (0..reqs.len()).map(|_| vec![ServerId(0)]).collect(),
            replication: None,
            waitlist: None,
            trace,
        };
        let out = run_differential(&sc).unwrap_or_else(|d| panic!("{scheduler:?}: {d}"));
        assert_eq!(out.arrivals, 8, "{scheduler:?}");
        assert_eq!(
            out.accepted_direct + out.rejected,
            8,
            "{scheduler:?}: no migration path exists on one server"
        );
        assert_eq!(out.completions, out.accepted_direct, "{scheduler:?}");
    }
}

/// A deliberately injected allocator bug — a stream's rate silently
/// perturbed without reallocation, exactly what a broken scheduler would
/// do — must be caught and localized to a (seed, time, stream) triple.
#[test]
fn injected_allocator_bug_is_caught_and_localized() {
    let mut caught = 0usize;
    for seed in 0..8u64 {
        let sc = OracleScenario::generate(seed);
        // Clean run first: the fault must be the only difference.
        let clean = run_differential(&sc).unwrap_or_else(|d| panic!("clean run diverged: {d}"));
        let accepted = clean.accepted_direct + clean.accepted_via_migration;
        assert!(accepted > 0, "vacuous scenario");
        // Corrupt after the LAST admission: no later admission can
        // trigger a reallocation that overwrites the bad rate before a
        // cross-check sees it. (Injected right before a simultaneous
        // admission to the same server, a corruption is healed with zero
        // observable effect — correctly nothing to report.)
        let fault = FaultInjection {
            at_arrival: accepted - 1,
            delta_mbps: 0.75,
        };
        let d = run_differential_with_fault(&sc, Some(fault)).expect_err(&format!(
            "seed {seed} ({:?}, migration={}): a silently corrupted rate must be reported",
            sc.scheduler, sc.migration_on
        ));
        assert_eq!(d.seed, seed, "report must carry the scenario seed");
        assert!(
            d.stream.is_some() || d.server.is_some(),
            "report must localize the fault: {d}"
        );
        let horizon = sc.trace.last().map(|(t, _)| *t).unwrap_or(SimTime::ZERO) + 1.0e7;
        assert!(d.time <= horizon, "report time out of range: {d}");
        // The report must render the replay coordinates.
        let rendered = d.to_string();
        assert!(
            rendered.contains(&format!("seed={seed}")) && rendered.contains("t="),
            "unhelpful report: {rendered}"
        );
        caught += 1;
    }
    assert_eq!(caught, 8);
}

/// Sub-tolerance perturbations must NOT trip the oracle — the comparison
/// is meant to catch real bugs, not float noise.
#[test]
fn sub_tolerance_noise_is_not_reported() {
    let sc = OracleScenario::generate(3);
    let fault = FaultInjection {
        at_arrival: 0,
        delta_mbps: 1e-9,
    };
    if let Err(d) = run_differential_with_fault(&sc, Some(fault)) {
        panic!("1 nMb/s of noise should stay under the tolerance: {d}");
    }
}

/// Cluster-sourced replication pinned on a hand-built trace: a copy of
/// video 0 streams from its sole holder to server 1 at 3 Mb/s (90 Mb →
/// done at t = 30), the reference mirrors the transfer megabit for
/// megabit, and once `CopyDone` installs the replica, an arrival that
/// finds server 0 saturated must be admitted on server 1 — the oracle's
/// own admission-legality check recomputes the eligible set from the
/// *updated* map, so a dropped CopyDone would diverge immediately.
#[test]
fn pinned_replication_copy_scenario_passes_the_oracle() {
    for scheduler in SchedulerKind::ALL {
        let mut trace = vec![
            (
                SimTime::ZERO,
                TraceOp::StartCopy {
                    video: VideoId(0),
                    size_mb: 90.0,
                },
            ),
            // Rides alongside the copy on server 0; finishes at t = 25.
            (
                SimTime::from_secs(5.0),
                TraceOp::Arrival {
                    video: VideoId(0),
                    size_mb: 60.0,
                },
            ),
        ];
        // Three 100-second clips saturate server 0's three slots...
        for _ in 0..3 {
            trace.push((
                SimTime::from_secs(35.0),
                TraceOp::Arrival {
                    video: VideoId(0),
                    size_mb: 300.0,
                },
            ));
        }
        // ... so this one can only land on the fresh replica.
        trace.push((
            SimTime::from_secs(40.0),
            TraceOp::Arrival {
                video: VideoId(0),
                size_mb: 60.0,
            },
        ));
        let sc = OracleScenario {
            seed: 0xC0B1E5,
            n_servers: 2,
            slots_per_server: 3,
            view_rate: 3.0,
            scheduler,
            migration_on: false,
            chain2_on: false,
            restart_on: false,
            client: ClientProfile::no_staging(30.0),
            holders: vec![vec![ServerId(0)]],
            replication: Some(ReplicationSpec {
                copy_rate_mbps: 3.0,
                max_concurrent: 1,
                cooldown_secs: 5.0,
                source: CopySource::Cluster,
            }),
            waitlist: None,
            trace,
        };
        let out = run_differential(&sc).unwrap_or_else(|d| panic!("{scheduler:?}: {d}"));
        assert_eq!(out.copies_started, 1, "{scheduler:?}");
        assert_eq!(out.copies_completed, 1, "{scheduler:?}");
        assert_eq!(out.arrivals, 5, "{scheduler:?}");
        assert_eq!(
            out.accepted_direct, 5,
            "{scheduler:?}: the last arrival needs the new replica"
        );
        assert_eq!(out.rejected, 0, "{scheduler:?}");
        assert_eq!(out.completions, 5, "{scheduler:?}");
    }
}

/// Waitlist service pinned on a hand-built trace: one two-slot server,
/// two 20-second clips admitted at t = 0, two more viewers rejected into
/// the queue. When both streams depart at t = 20, `try_serve` re-admits
/// both waiters as fresh streams the reference must pick up mid-replay
/// (playback restarts at the serve time, not at arrival).
#[test]
fn pinned_waitlist_serve_scenario_passes_the_oracle() {
    for scheduler in SchedulerKind::ALL {
        let arrival = |t: f64, size_mb: f64| {
            (
                SimTime::from_secs(t),
                TraceOp::Arrival {
                    video: VideoId(0),
                    size_mb,
                },
            )
        };
        let sc = OracleScenario {
            seed: 0x3A17,
            n_servers: 1,
            slots_per_server: 2,
            view_rate: 3.0,
            scheduler,
            migration_on: false,
            chain2_on: false,
            restart_on: false,
            client: ClientProfile::no_staging(30.0),
            holders: vec![vec![ServerId(0)]],
            replication: None,
            waitlist: Some(WaitlistSpec::new(60.0, 4)),
            trace: vec![
                arrival(0.0, 60.0),
                arrival(0.0, 60.0),
                // Both slots taken: these two wait (patience until t+60).
                arrival(1.0, 60.0),
                arrival(2.0, 600.0),
            ],
        };
        let out = run_differential(&sc).unwrap_or_else(|d| panic!("{scheduler:?}: {d}"));
        assert_eq!(out.arrivals, 4, "{scheduler:?}");
        assert_eq!(out.accepted_direct, 2, "{scheduler:?}");
        assert_eq!(out.rejected, 2, "{scheduler:?}");
        assert_eq!(out.waitlisted, 2, "{scheduler:?}");
        assert_eq!(
            out.waiters_served, 2,
            "{scheduler:?}: both waiters fit once the first pair departs"
        );
        assert_eq!(out.waiters_expired, 0, "{scheduler:?}");
        assert_eq!(out.completions, 4, "{scheduler:?}");
    }
}

/// Migration-triggered chain-2 pinned on a hand-built trace. Ring
/// topology — v0 on {s0}, v1 on {s0, s1}, v2 on {s1, s2} — with s0 and
/// s1 filled exactly (three v1 clips on s0; two v1 plus one v2 on s1)
/// and two free slots on s2. The v0 arrival then fails direct (s0 full)
/// and single-hop (s1, the only other v1 holder, is full), so admission
/// must chain: the v2 victim moves s1 → s2, a v1 victim moves s0 → s1,
/// and the arrival lands on s0. The oracle mirrors both hops and checks
/// them against the controller's deterministic depth-2 plan.
#[test]
fn pinned_chain2_migration_scenario_passes_the_oracle() {
    for scheduler in SchedulerKind::ALL {
        let arrival = |t: f64, video: u32, size_mb: f64| {
            (
                SimTime::from_secs(t),
                TraceOp::Arrival {
                    video: VideoId(video),
                    size_mb,
                },
            )
        };
        let mut trace = vec![arrival(0.0, 2, 600.0), arrival(0.0, 2, 600.0)];
        for _ in 0..5 {
            trace.push(arrival(0.0, 1, 600.0));
        }
        trace.push(arrival(1.0, 0, 60.0));
        let sc = OracleScenario {
            seed: 0xC4A12,
            n_servers: 3,
            slots_per_server: 3,
            view_rate: 3.0,
            scheduler,
            migration_on: true,
            chain2_on: true,
            restart_on: false,
            client: ClientProfile::no_staging(30.0),
            holders: vec![
                vec![ServerId(0)],
                vec![ServerId(0), ServerId(1)],
                vec![ServerId(1), ServerId(2)],
            ],
            replication: None,
            waitlist: None,
            trace,
        };
        let out = run_differential(&sc).unwrap_or_else(|d| panic!("{scheduler:?}: {d}"));
        assert_eq!(out.arrivals, 8, "{scheduler:?}");
        assert_eq!(out.accepted_direct, 7, "{scheduler:?}");
        assert_eq!(out.accepted_via_migration, 0, "{scheduler:?}");
        assert_eq!(
            out.accepted_via_chain, 1,
            "{scheduler:?}: the v0 arrival needs the two-step chain"
        );
        assert_eq!(out.rejected, 0, "{scheduler:?}");
        assert_eq!(out.completions, 8, "{scheduler:?}");
    }
}

/// Waitlist-triggered chain-2 pinned on a hand-built trace. Same ring
/// topology with two slots per server; at t = 0 the v0 waiter's chain is
/// blocked because s2 is full too, so it queues. At t = 20 the short v2
/// clip on s2 finishes, the departure triggers waitlist service through
/// the full admission path, and the waiter is placed by a fresh chain
/// (v2: s1 → s2, v1: s0 → s1, waiter → s0) — an assisted serve the
/// reference mirrors hop by hop.
#[test]
fn pinned_chain2_waitlist_scenario_passes_the_oracle() {
    for scheduler in SchedulerKind::ALL {
        let arrival = |t: f64, video: u32, size_mb: f64| {
            (
                SimTime::from_secs(t),
                TraceOp::Arrival {
                    video: VideoId(video),
                    size_mb,
                },
            )
        };
        let sc = OracleScenario {
            seed: 0xC4A13,
            n_servers: 3,
            slots_per_server: 2,
            view_rate: 3.0,
            scheduler,
            migration_on: true,
            chain2_on: true,
            restart_on: false,
            client: ClientProfile::no_staging(30.0),
            holders: vec![
                vec![ServerId(0)],
                vec![ServerId(0), ServerId(1)],
                vec![ServerId(1), ServerId(2)],
            ],
            replication: None,
            waitlist: Some(WaitlistSpec::new(60.0, 4)),
            trace: vec![
                // Least-loaded placement alternates v2 clips s1, s2,
                // s1, s2; the 60 Mb clip on s2 departs at t = 20.
                arrival(0.0, 2, 600.0),
                arrival(0.0, 2, 60.0),
                arrival(0.0, 2, 600.0),
                arrival(0.0, 2, 600.0),
                // Two v1 clips fill s0.
                arrival(0.0, 1, 600.0),
                arrival(0.0, 1, 600.0),
                // Every server full, every chain blocked: queue up.
                arrival(1.0, 0, 60.0),
            ],
        };
        let out = run_differential(&sc).unwrap_or_else(|d| panic!("{scheduler:?}: {d}"));
        assert_eq!(out.arrivals, 7, "{scheduler:?}");
        assert_eq!(out.accepted_direct, 6, "{scheduler:?}");
        assert_eq!(out.rejected, 1, "{scheduler:?}");
        assert_eq!(out.waitlisted, 1, "{scheduler:?}");
        assert_eq!(
            out.waiters_served, 1,
            "{scheduler:?}: the departure at t = 20 must free the chain"
        );
        assert_eq!(
            out.waiters_assisted, 1,
            "{scheduler:?}: the serve must go through the admission path"
        );
        assert_eq!(
            out.accepted_via_chain, 1,
            "{scheduler:?}: the assisted serve must be a two-step chain"
        );
        assert_eq!(out.waiters_expired, 0, "{scheduler:?}");
        assert_eq!(out.completions, 7, "{scheduler:?}");
    }
}

/// The headline evacuation bug pinned through the oracle: one v1 stream
/// is playing on s0 (with workahead staged) when s0 fails. Migration is
/// disabled, so a seamless hand-off is impossible — the strict policy
/// drops the stream even though s1 holds the same video with free slots.
/// The best-effort policy restarts it from the playback point on s1
/// instead (flushing the staged workahead), and the stream then runs to
/// completion. Both policies must track the analytic reference exactly
/// through the failure, the restart rewind, and the repair.
#[test]
fn pinned_evacuation_restart_scenario_passes_the_oracle() {
    for scheduler in SchedulerKind::ALL {
        for restart_on in [false, true] {
            let sc = OracleScenario {
                seed: 0xE7AC,
                n_servers: 2,
                slots_per_server: 2,
                view_rate: 3.0,
                scheduler,
                migration_on: false,
                chain2_on: false,
                restart_on,
                client: ClientProfile::new(1e6, 30.0),
                holders: vec![vec![ServerId(0)], vec![ServerId(0), ServerId(1)]],
                replication: None,
                waitlist: None,
                trace: vec![
                    // Least-loaded placement ties to the lowest id: s0.
                    (
                        SimTime::from_secs(0.0),
                        TraceOp::Arrival {
                            video: VideoId(1),
                            size_mb: 600.0,
                        },
                    ),
                    // Mid-transfer: the stream has viewed 150 Mb and
                    // (under the workahead schedulers) staged well past
                    // that.
                    (SimTime::from_secs(50.0), TraceOp::Fail(ServerId(0))),
                    (SimTime::from_secs(80.0), TraceOp::Repair(ServerId(0))),
                ],
            };
            let out = run_differential(&sc)
                .unwrap_or_else(|d| panic!("{scheduler:?} restart_on={restart_on}: {d}"));
            assert_eq!(out.arrivals, 1, "{scheduler:?} restart_on={restart_on}");
            assert_eq!(
                out.accepted_direct, 1,
                "{scheduler:?} restart_on={restart_on}"
            );
            // The observable difference between the policies: a dropped
            // stream never finishes; a restarted one does.
            assert_eq!(
                out.completions,
                u64::from(restart_on),
                "{scheduler:?} restart_on={restart_on}: the stream must {} complete",
                if restart_on { "" } else { "not" }
            );
        }
    }
}

/// Generated scenarios with bit 7 of the seed set run the best-effort
/// evacuation restart policy against the reference — the randomized
/// counterpart of the pinned scenario above (the 104-seed matrix keeps
/// the historical strict-policy corpus bit-for-bit).
#[test]
fn generated_restart_scenarios_produce_zero_divergences() {
    for seed in 128..144u64 {
        let sc = OracleScenario::generate(seed);
        assert!(
            sc.restart_on,
            "seed {seed}: bit 7 must arm the restart policy"
        );
        if let Err(d) = run_differential(&sc) {
            panic!("seed {seed}: {d}");
        }
    }
}
