//! Property tests for the distribution controller over random cluster
//! shapes, replica maps, and arrival storms.

use proptest::prelude::*;
use sct_admission::{Admission, AssignmentPolicy, Controller, MigrationPolicy, VictimSelection};
use sct_cluster::{ReplicaMap, ServerId};
use sct_core::oracle::audit_engines;
use sct_media::{ClientProfile, VideoId};
use sct_simcore::{Rng, SimTime};
use sct_transmission::{SchedulerKind, ServerEngine, Stream, StreamId};

const VIEW: f64 = 3.0;

#[derive(Clone, Debug)]
struct Scenario {
    n_servers: usize,
    slots: usize,
    /// For each video: bitmask of holder servers (at least one).
    videos: Vec<u8>,
    /// Arrival sequence: (gap seconds, video index, size Mb).
    arrivals: Vec<(f64, usize, f64)>,
    migration_on: bool,
    /// Two-step chains allowed (`max_chain_length = 2`)?
    chain2: bool,
    hops: u32,
    victim: usize,
    seed: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (2usize..6, 2usize..8).prop_flat_map(|(n_servers, slots)| {
        let n_videos = 1usize..12;
        n_videos.prop_flat_map(move |nv| {
            (
                prop::collection::vec(1u8..(1 << n_servers) as u8, nv..=nv),
                prop::collection::vec((0.0f64..40.0, 0..nv, 60.0f64..900.0), 1..80),
                prop::bool::ANY,
                prop::bool::ANY,
                0u32..3,
                0usize..4,
                any::<u64>(),
            )
                .prop_map(
                    move |(videos, arrivals, migration_on, chain2, hops, victim, seed)| Scenario {
                        n_servers,
                        slots,
                        videos,
                        arrivals,
                        migration_on,
                        chain2,
                        hops,
                        victim,
                        seed,
                    },
                )
        })
    })
}

fn victim_by_index(i: usize) -> VictimSelection {
    [
        VictimSelection::MostStaged,
        VictimSelection::FirstFeasible,
        VictimSelection::EarliestFinish,
        VictimSelection::Random,
    ][i]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the topology, policies, and arrival storm: counters add
    /// up, no server is ever overcommitted, hop budgets hold, and every
    /// admitted stream sits on a server that actually stores its video.
    #[test]
    fn controller_holds_invariants_under_storm(sc in scenario()) {
        let capacity = sc.slots as f64 * VIEW;
        let mut engines: Vec<ServerEngine> = (0..sc.n_servers as u16)
            .map(|i| ServerEngine::new(ServerId(i), capacity, SchedulerKind::Eftf))
            .collect();
        let holders: Vec<Vec<ServerId>> = sc
            .videos
            .iter()
            .map(|&mask| {
                (0..sc.n_servers as u16)
                    .filter(|s| mask & (1 << s) != 0)
                    .map(ServerId)
                    .collect()
            })
            .collect();
        let map = ReplicaMap::from_holders(sc.n_servers, holders);
        let migration = MigrationPolicy {
            enabled: sc.migration_on,
            max_chain_length: if sc.chain2 { 2 } else { 1 },
            max_hops_per_request: Some(sc.hops),
            handoff_latency_secs: 0.0,
            victim_selection: victim_by_index(sc.victim),
        };
        let mut controller = Controller::new(AssignmentPolicy::LeastLoaded, migration);
        let mut rng = Rng::new(sc.seed);
        let client = ClientProfile::new(300.0, 30.0);

        let mut clock = SimTime::ZERO;
        let mut t = 0.0f64;
        for (i, &(gap, vid, size)) in sc.arrivals.iter().enumerate() {
            t += gap;
            let arrival = SimTime::from_secs(t);
            // Drain all engine events up to the arrival. Each engine's
            // next event is anchored at its *own* clock (rates are
            // piecewise constant from there).
            loop {
                let next = engines
                    .iter()
                    .filter_map(|e| e.next_event_after(e.clock()).map(|(w, _)| (w, e.id())))
                    .min_by(|a, b| a.0.cmp(&b.0));
                match next {
                    Some((when, id)) if when <= arrival => {
                        let e = &mut engines[id.index()];
                        e.advance_to(when);
                        e.reap_finished(when);
                        e.reschedule(when);
                        clock = clock.max(when);
                    }
                    _ => break,
                }
            }
            clock = arrival;
            let stream = Stream::new(
                StreamId(i as u64),
                VideoId(vid as u32),
                size,
                VIEW,
                client,
                arrival,
            );
            let (admission, touched) =
                controller.admit(stream, &mut engines, &map, arrival, &mut rng);
            for sid in &touched {
                let e = &mut engines[sid.index()];
                e.advance_to(arrival);
                e.reschedule(arrival);
            }
            // Invariants after every decision — the oracle's auditor
            // (ledger vs stream sum, capacity, min-flow, staging bounds)
            // plus the controller-level placement rules below.
            if let Err(d) = audit_engines(sc.seed, arrival, &engines) {
                prop_assert!(false, "{}", d);
            }
            controller.stats.check();
            for e in &engines {
                e.check_invariants();
                prop_assert!(
                    e.active_count() <= sc.slots,
                    "server over its slot count"
                );
                for s in e.streams() {
                    prop_assert!(
                        map.holds(e.id(), s.video),
                        "stream {} for {} placed on non-holder {}",
                        s.id,
                        s.video,
                        e.id()
                    );
                    prop_assert!(
                        s.hops <= sc.hops,
                        "hop budget exceeded: {} > {}",
                        s.hops,
                        sc.hops
                    );
                }
            }
            match admission {
                Admission::WithMigration { .. } => {
                    prop_assert!(sc.migration_on, "migration fired while disabled");
                }
                Admission::WithChain { .. } => {
                    prop_assert!(
                        sc.migration_on && sc.chain2,
                        "chain fired outside a chain-2 policy"
                    );
                }
                _ => {}
            }
        }
        prop_assert_eq!(controller.stats.arrivals, sc.arrivals.len() as u64);
        if !sc.migration_on {
            prop_assert_eq!(controller.stats.accepted_via_migration, 0);
        }
        if !(sc.migration_on && sc.chain2) {
            prop_assert_eq!(controller.stats.chain2_migrations, 0);
        }
    }
}
