//! Serialisation contracts: configs, outcomes, series, and traces must
//! round-trip through JSON so experiments can be archived and replayed.

use sct_core::config::SimConfig;
use sct_core::policies::Policy;
use sct_core::simulation::{SimOutcome, Simulation};
use sct_simcore::{Rng, SimTime, ZipfLike};
use sct_workload::{SystemSpec, Trace};

#[test]
fn config_round_trips_and_reproduces() {
    let cfg = SimConfig::builder(SystemSpec::tiny_test())
        .policy(Policy::P4)
        .theta(-0.25)
        .duration_hours(2.0)
        .seed(0xABCD)
        .build();
    let json = serde_json::to_string_pretty(&cfg).unwrap();
    let back: SimConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);
    // A deserialised config reproduces the original run exactly.
    assert_eq!(Simulation::run(&cfg), Simulation::run(&back));
}

#[test]
fn outcome_round_trips() {
    let cfg = SimConfig::builder(SystemSpec::tiny_test())
        .duration_hours(1.0)
        .warmup_hours(0.1)
        .seed(5)
        .build();
    let out = Simulation::run(&cfg);
    let json = serde_json::to_string(&out).unwrap();
    let back: SimOutcome = serde_json::from_str(&json).unwrap();
    assert_eq!(out, back);
}

#[test]
fn trace_archives_a_workload() {
    let pops = ZipfLike::new(30, 0.271);
    let trace = Trace::generate(0.5, &pops, SimTime::from_hours(1.0), &Rng::new(77));
    let json = trace.to_json();
    let back = Trace::from_json(&json).unwrap();
    assert_eq!(trace, back);
    assert!(back.len() > 100, "half a req/s for an hour: {}", back.len());
}

#[test]
fn infinite_receive_cap_survives_json() {
    // f64::INFINITY is not valid JSON; serde_json maps it to null and back
    // to... this documents the behaviour so nobody archives unbounded
    // configs by accident.
    let cfg = SimConfig::builder(SystemSpec::tiny_test())
        .receive_cap(f64::INFINITY)
        .build();
    let json = serde_json::to_string(&cfg).unwrap();
    let back: Result<SimConfig, _> = serde_json::from_str(&json);
    match back {
        Ok(b) => assert!(
            b.receive_cap_mbps.is_infinite() || json.contains("null"),
            "either preserved or explicitly null"
        ),
        Err(_) => { /* also acceptable: explicit failure beats silent corruption */ }
    }
}
