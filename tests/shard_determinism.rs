//! Shard-count invariance matrix.
//!
//! The sharded event loop's central claim: partitioning the queue by
//! server changes *nothing observable*. The conservative barrier in
//! `sct_simcore::ShardedQueue` multiplexes shards on one thread in
//! exactly the merged single-queue order, so the RNG draw sequence, the
//! event stream, and every outcome float are bit-identical for any
//! shard count. This test runs the four golden scenarios (the same
//! configs `golden_outcomes.rs` locks against pre-refactor fixtures)
//! with `shards ∈ {1, 2, 4}` and asserts identical [`SimOutcome`]s
//! *and* identical span sets — the strongest observable equality the
//! probes expose.
//!
//! Combined with `golden_outcomes.rs` (which pins `shards = 1` to the
//! pre-refactor snapshots), this transitively pins every shard count to
//! the pre-refactor loop.

use sct_core::spans::capture;
use semi_continuous_vod::prelude::*;

const SHARD_MATRIX: [usize; 3] = [1, 2, 4];

/// Runs `build(shards)` for every shard count and asserts outcomes and
/// span sets match the `shards = 1` baseline bit-for-bit.
fn assert_shard_invariant(name: &str, build: impl Fn(usize) -> SimConfig) {
    let (base_outcome, base_spans) = capture(&build(1));
    assert!(
        !base_spans.spans.is_empty(),
        "{name}: scenario produced no spans — matrix would be vacuous"
    );
    for &shards in &SHARD_MATRIX[1..] {
        let (outcome, spans) = capture(&build(shards));
        assert_eq!(
            outcome, base_outcome,
            "{name}: SimOutcome diverged at shards = {shards}"
        );
        assert_eq!(
            spans, base_spans,
            "{name}: span set diverged at shards = {shards}"
        );
    }
}

#[test]
fn shard_matrix_small_no_migration() {
    assert_shard_invariant("small_no_migration", |shards| {
        SimConfig::builder(SystemSpec::small_paper())
            .duration_hours(3.0)
            .warmup_hours(0.5)
            .sample_interval_secs(900.0)
            .track_per_video(true)
            .shards(shards)
            .seed(1001)
            .build()
    });
}

#[test]
fn shard_matrix_small_migration_interactive() {
    assert_shard_invariant("small_migration_interactive", |shards| {
        SimConfig::builder(SystemSpec::small_paper())
            .theta(0.0)
            .migration(MigrationPolicy::single_hop())
            .interactivity(0.3, 60.0, 600.0)
            .waitlist(120.0, 50)
            .shards(shards)
            .seed(1002)
            .duration_hours(3.0)
            .warmup_hours(0.5)
            .build()
    });
}

#[test]
fn shard_matrix_large_no_migration_replication() {
    assert_shard_invariant("large_no_migration_replication", |shards| {
        SimConfig::builder(SystemSpec::large_paper())
            .theta(-0.5)
            .replication(ReplicationSpec::default_paper_scale())
            .shards(shards)
            .seed(1003)
            .duration_hours(2.0)
            .warmup_hours(0.5)
            .build()
    });
}

#[test]
fn shard_matrix_large_migration_failures() {
    assert_shard_invariant("large_migration_failures", |shards| {
        SimConfig::builder(SystemSpec::large_paper())
            .migration(MigrationPolicy::single_hop())
            .failures(4.0, 0.5)
            .shards(shards)
            .seed(1004)
            .duration_hours(2.0)
            .warmup_hours(0.5)
            .build()
    });
}

/// Oversharding clamps: more shards than servers behaves like one shard
/// per server, and outcomes still match.
#[test]
fn shard_matrix_overshard_clamps() {
    let build = |shards: usize| {
        SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(2.0)
            .warmup_hours(0.25)
            .shards(shards)
            .seed(7)
            .build()
    };
    let base = Simulation::run(&build(1));
    // tiny_test has 3 servers; 64 shards must clamp to 3.
    let over = Simulation::run(&build(64));
    assert_eq!(over, base, "oversharded outcome diverged");
}

/// The flight recorder splits its determinism promise in two. The
/// `windows` and `alerts` sections are pure folds of the (shard-
/// invariant) event stream and state views, so they must be
/// bit-identical for any shard count. The `shards` section describes
/// the loop's *execution shape* — run lengths, barrier-horizon slack,
/// cross-shard edges — which legitimately varies with the shard count
/// but must still be bit-identical across repeated runs at the same
/// count (it is derived from virtual time only, never wall clock).
#[test]
fn timeseries_recording_is_deterministic_across_the_shard_matrix() {
    let build = |shards: usize| {
        SimConfig::builder(SystemSpec::small_paper())
            .theta(0.0)
            .migration(MigrationPolicy::single_hop())
            .shards(shards)
            .seed(1002)
            .duration_hours(2.0)
            .warmup_hours(0.5)
            .build()
    };
    let record = |shards: usize| {
        let cfg = build(shards);
        let mut probe = TimeSeriesProbe::new(&cfg, 600.0);
        Simulation::run_with_probes(&cfg, &mut [&mut probe]);
        probe.finish()
    };
    let base = record(1);
    assert!(!base.windows.is_empty());
    for &shards in &SHARD_MATRIX {
        let rec = record(shards);
        assert_eq!(
            rec.windows, base.windows,
            "window series diverged at shards = {shards}"
        );
        assert_eq!(
            rec.alerts, base.alerts,
            "alert stream diverged at shards = {shards}"
        );
        // Repeatability: the whole recording — barrier-slack series
        // included — is bit-identical run over run.
        let again = record(shards);
        assert_eq!(
            again.to_json(),
            rec.to_json(),
            "recording not reproducible at shards = {shards}"
        );
        if shards > 1 {
            assert_eq!(rec.shards.len(), shards, "missing per-shard series");
            let bounded: u64 = rec.shards.iter().flat_map(|s| &s.bounded_runs).sum();
            assert!(
                bounded > 0,
                "sharded run recorded no bounded barrier horizons"
            );
        }
    }
}

/// The cross-shard channel is observational: trace probes see
/// `CrossShard` records iff `shards > 1` and a relocation actually
/// crosses a boundary, and those records never perturb the run.
#[test]
fn cross_shard_channel_surfaces_only_when_sharded() {
    struct CrossCounter(u64);
    impl Probe for CrossCounter {
        fn on_event(&mut self, _now: sct_simcore::SimTime, event: &SimEvent) {
            if let SimEvent::CrossShard {
                from_shard,
                to_shard,
                ..
            } = event
            {
                assert_ne!(from_shard, to_shard, "same-shard relocation surfaced");
                self.0 += 1;
            }
        }
    }
    // Migration-heavy config so displacements are guaranteed.
    let build = |shards: usize| {
        SimConfig::builder(SystemSpec::small_paper())
            .theta(0.0)
            .migration(MigrationPolicy::single_hop())
            .shards(shards)
            .seed(1002)
            .duration_hours(2.0)
            .warmup_hours(0.5)
            .build()
    };
    let mut mono = CrossCounter(0);
    let out_mono = Simulation::run_with_probes(&build(1), &mut [&mut mono]);
    assert_eq!(mono.0, 0, "monolithic loop must emit no CrossShard records");

    let mut sharded = CrossCounter(0);
    let out_sharded = Simulation::run_with_probes(&build(4), &mut [&mut sharded]);
    assert!(
        sharded.0 > 0,
        "4-shard migration-heavy run surfaced no cross-shard relocations"
    );
    assert_eq!(out_mono, out_sharded, "channel records perturbed the run");
}
