//! Span/edge causality on a mechanism-rich fixed-seed scenario.
//!
//! One configuration turns on every causal mechanism at once — DRM with
//! two-step chains, a failure/repair process, and a waitlist — and the
//! [`SpanProbe`]'s causal edges are then reconciled span-by-span against
//! the loop's own aggregate counters. Each edge kind has an exact
//! counterpart in [`SimOutcome`]:
//!
//! * `Displaced` edges ↔ `stats.accepted_via_migration` (every migrated
//!   or chained admission displaces exactly one victim),
//! * `ChainInner` edges ↔ `stats.chain2_migrations`,
//! * `Evacuated` edges ↔ `stats.relocated_on_failure`,
//! * `FreedSlot` edges ↔ `waitlist.served`.

use sct_analysis::spans::{AdmitVia, EdgeEnd, EdgeKind, SegmentKind, SpanKind, SpanSet};
use semi_continuous_vod::prelude::*;

fn rich_scenario() -> SimConfig {
    SimConfig::builder(SystemSpec::small_paper())
        .theta(0.0)
        .migration(MigrationPolicy::chain2())
        .failures(6.0, 0.4)
        .waitlist(180.0, 50)
        .duration_hours(3.0)
        .warmup_hours(0.5)
        .seed(99)
        .build()
}

fn capture() -> (SimOutcome, SpanSet) {
    let cfg = rich_scenario();
    let mut probe = SpanProbe::new();
    let outcome = Simulation::run_with_probes(&cfg, &mut [&mut probe]);
    (outcome, probe.finish(cfg.duration.as_secs()))
}

#[test]
fn every_edge_kind_reconciles_with_the_aggregate_counters() {
    let (out, set) = capture();
    // The scenario must actually exercise all four mechanisms.
    assert!(out.stats.accepted_via_migration > 0, "no DRM admissions");
    assert!(out.stats.chain2_migrations > 0, "no chain-2 admissions");
    assert!(out.stats.relocated_on_failure > 0, "no evacuations");
    assert!(out.waitlist.served > 0, "no waitlist service");

    assert_eq!(
        set.edges_of(EdgeKind::Displaced).count() as u64,
        out.stats.accepted_via_migration,
        "one Displaced edge per migrated/chained admission"
    );
    assert_eq!(
        set.edges_of(EdgeKind::ChainInner).count() as u64,
        out.stats.chain2_migrations,
        "one ChainInner edge per chain-2 admission"
    );
    assert_eq!(
        set.edges_of(EdgeKind::Evacuated).count() as u64,
        out.stats.relocated_on_failure,
        "one Evacuated edge per rescued stream"
    );
    assert_eq!(
        set.edges_of(EdgeKind::FreedSlot).count() as u64,
        out.waitlist.served,
        "one FreedSlot edge per served waiter"
    );
}

#[test]
fn displaced_edges_point_from_drm_admissions_to_moved_victims() {
    let (_, set) = capture();
    for edge in set.edges_of(EdgeKind::Displaced) {
        let EdgeEnd::Stream { stream: cause } = edge.cause else {
            panic!("Displaced cause must be a stream: {edge:?}");
        };
        let EdgeEnd::Stream { stream: effect } = edge.effect else {
            panic!("Displaced effect must be a stream: {edge:?}");
        };
        let admitted = set.span(cause).expect("cause span exists");
        assert!(
            matches!(
                admitted.admit_via,
                Some(AdmitVia::Migrated) | Some(AdmitVia::Chained)
            ),
            "displacing admission {cause} must be migrated/chained: {admitted:?}"
        );
        assert_eq!(
            admitted.start_secs, edge.at_secs,
            "the victim moves at the admission instant"
        );
        let victim = set.span(effect).expect("victim span exists");
        assert!(victim.hops >= 1, "victim {effect} never hopped: {victim:?}");
        // The victim's segment chain changes servers at the edge time.
        assert!(
            victim
                .segments
                .iter()
                .any(|seg| seg.start_secs == edge.at_secs && seg.server.is_some()),
            "victim {effect} has no segment starting at the hand-off: {victim:?}"
        );
    }
}

#[test]
fn chain_inner_edges_link_two_victims_of_one_admission() {
    let (_, set) = capture();
    let displaced: Vec<_> = set.edges_of(EdgeKind::Displaced).collect();
    for edge in set.edges_of(EdgeKind::ChainInner) {
        let EdgeEnd::Stream { stream: outer } = edge.cause else {
            panic!("ChainInner cause must be a stream: {edge:?}");
        };
        let EdgeEnd::Stream { stream: inner } = edge.effect else {
            panic!("ChainInner effect must be a stream: {edge:?}");
        };
        // The outer victim was itself displaced, at the same instant, by
        // a chained admission.
        let parent = displaced
            .iter()
            .find(|d| d.at_secs == edge.at_secs && d.effect == EdgeEnd::Stream { stream: outer })
            .unwrap_or_else(|| panic!("no Displaced edge feeds ChainInner {edge:?}"));
        let EdgeEnd::Stream { stream: admitted } = parent.cause else {
            unreachable!("checked above");
        };
        assert_eq!(
            set.span(admitted).unwrap().admit_via,
            Some(AdmitVia::Chained),
            "chain parent admission must be Chained"
        );
        let inner_span = set.span(inner).expect("inner victim span exists");
        assert!(inner_span.hops >= 1, "inner victim never hopped");
    }
}

#[test]
fn evacuated_edges_come_from_marked_failures() {
    let (out, set) = capture();
    for edge in set.edges_of(EdgeKind::Evacuated) {
        let EdgeEnd::Server { server } = edge.cause else {
            panic!("Evacuated cause must be a server: {edge:?}");
        };
        assert!(
            set.marks
                .iter()
                .any(|m| m.server == server && m.down && m.at_secs == edge.at_secs),
            "no ServerDown mark backs evacuation {edge:?}"
        );
        let EdgeEnd::Stream { stream } = edge.effect else {
            panic!("Evacuated effect must be a stream: {edge:?}");
        };
        let rescued = set.span(stream).expect("rescued span exists");
        assert!(rescued.hops >= 1, "rescued stream never hopped");
    }
    // Mark payloads agree with the aggregate failure accounting.
    let relocated: u32 = set
        .marks
        .iter()
        .filter(|m| m.down)
        .map(|m| m.relocated)
        .sum();
    let dropped: u32 = set.marks.iter().filter(|m| m.down).map(|m| m.dropped).sum();
    assert_eq!(u64::from(relocated), out.stats.relocated_on_failure);
    assert_eq!(u64::from(dropped), out.stats.dropped_on_failure);
}

#[test]
fn freed_slot_edges_serve_waiters_at_the_freeing_instant() {
    let (_, set) = capture();
    for edge in set.edges_of(EdgeKind::FreedSlot) {
        let EdgeEnd::Stream { stream } = edge.effect else {
            panic!("FreedSlot effect must be a stream: {edge:?}");
        };
        let served = set.span(stream).expect("served span exists");
        assert_eq!(
            served.admit_via,
            Some(AdmitVia::Waitlist),
            "FreedSlot must serve a waitlisted span: {served:?}"
        );
        // The wait segment ends exactly when the capacity appeared.
        assert!(
            served
                .segments
                .iter()
                .any(|seg| { seg.kind == SegmentKind::Wait && seg.end_secs == Some(edge.at_secs) }),
            "served span's wait does not end at the edge: {served:?}"
        );
        match edge.cause {
            EdgeEnd::Stream { stream: freer } => {
                // The freeing stream (completion or reaped copy) ended
                // at that instant.
                let cause = set.span(freer).expect("freeing span exists");
                assert_eq!(
                    cause.end_secs,
                    Some(edge.at_secs),
                    "freeing span did not end at the edge: {cause:?}"
                );
            }
            EdgeEnd::Server { server } => {
                // A repair brought the capacity back.
                assert!(
                    set.marks
                        .iter()
                        .any(|m| m.server == server && !m.down && m.at_secs == edge.at_secs),
                    "no ServerUp mark backs {edge:?}"
                );
            }
        }
    }
}

#[test]
fn spans_partition_arrivals_and_stay_inside_the_horizon() {
    let (out, set) = capture();
    let viewers: Vec<_> = set
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Viewer)
        .collect();
    assert_eq!(viewers.len() as u64, out.stats.arrivals);
    for span in &set.spans {
        assert!(span.start_secs >= 0.0);
        if let Some(end) = span.end_secs {
            assert!(end >= span.start_secs, "negative span: {span:?}");
            assert!(end <= set.horizon_secs, "span past horizon: {span:?}");
        }
        // Segments tile the span without overlap in time order.
        let mut prev_end = span.start_secs;
        for seg in &span.segments {
            assert!(seg.start_secs >= prev_end, "overlapping segments: {span:?}");
            prev_end = seg.end_secs.unwrap_or(f64::INFINITY);
        }
    }
}
