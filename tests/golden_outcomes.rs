//! Golden fixed-seed `SimOutcome` snapshots.
//!
//! These fixtures were generated from the pre-refactor event loop
//! (`UPDATE_GOLDEN=1 cargo test --test golden_outcomes`) and lock the
//! simulation's observable behaviour bit-for-bit: every float in
//! `SimOutcome` must round-trip exactly (the vendored serde_json always
//! uses shortest-exact float formatting). Any change to event ordering,
//! RNG draw order, or the per-engine integration step sequence shows up
//! here as a diff, not as a silent drift.
//!
//! The four configs cover both paper systems, migration on and off, and
//! between them exercise every event kind the loop handles: failures,
//! pause/resume, replication copies, waitlist service, and window
//! sampling.

use semi_continuous_vod::prelude::*;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn check_golden(name: &str, config: &SimConfig) {
    let outcome = Simulation::run(config);

    // Attaching the full telemetry probe must not perturb the run: the
    // outcome stays bit-identical, and because the telemetry gauges
    // integrate the same piecewise-linear quantities the epilogue measures,
    // their time-weighted means reproduce the utilization figures exactly.
    let mut telemetry = TelemetryProbe::new(config);
    let with_probe = Simulation::run_with_probes(config, &mut [&mut telemetry]);
    assert_eq!(
        with_probe, outcome,
        "{name}: attaching TelemetryProbe perturbed the outcome"
    );
    let registry = telemetry.finish();
    let cluster = registry
        .gauge("cluster_utilization")
        .expect("cluster gauge present");
    assert!(
        (cluster.mean() - outcome.utilization).abs() < 1e-9,
        "{name}: cluster gauge mean {} vs epilogue utilization {}",
        cluster.mean(),
        outcome.utilization
    );
    for (i, &per_server) in outcome.per_server_utilization.iter().enumerate() {
        let gauge = registry
            .gauge(&format!("server_utilization/{i}"))
            .expect("per-server gauge present");
        assert!(
            (gauge.mean() - per_server).abs() < 1e-9,
            "{name}: server {i} gauge mean {} vs epilogue {}",
            gauge.mean(),
            per_server
        );
    }

    // The flight recorder must be equally invisible, and its windows
    // must reconcile with the other observability layers: the
    // measured-seconds-weighted mean of per-window utilization is the
    // epilogue's utilization (same piecewise-linear integrand, split at
    // window boundaries), and window-summed admission/rejection counts
    // equal the telemetry registry's counters exactly.
    let mut ts_probe = TimeSeriesProbe::new(config, 600.0);
    let with_ts = Simulation::run_with_probes(config, &mut [&mut ts_probe]);
    assert_eq!(
        with_ts, outcome,
        "{name}: attaching TimeSeriesProbe perturbed the outcome"
    );
    let recording = ts_probe.finish();
    let measured: f64 = recording.windows.iter().map(|w| w.measured_secs).sum();
    assert!(measured > 0.0, "{name}: no measured window time");
    let util = recording
        .windows
        .iter()
        .map(|w| w.utilization * w.measured_secs)
        .sum::<f64>()
        / measured;
    assert!(
        (util - outcome.utilization).abs() < 1e-9,
        "{name}: window-integrated utilization {util} vs epilogue {}",
        outcome.utilization
    );
    for (i, &per_server) in outcome.per_server_utilization.iter().enumerate() {
        let util_i = recording
            .windows
            .iter()
            .map(|w| w.server_utilization[i] * w.measured_secs)
            .sum::<f64>()
            / measured;
        assert!(
            (util_i - per_server).abs() < 1e-9,
            "{name}: server {i} window-integrated utilization {util_i} vs epilogue {per_server}"
        );
    }
    let sum = |f: fn(&WindowRow) -> u64| recording.windows.iter().map(f).sum::<u64>();
    assert_eq!(
        sum(|w| w.arrivals),
        registry.counter("admitted_direct")
            + registry.counter("admitted_drm")
            + registry.counter("admitted_chained")
            + registry.counter("rejected"),
        "{name}: arrivals must decompose into admission paths + rejections"
    );
    assert_eq!(
        sum(|w| w.admitted),
        registry.counter("admitted_direct"),
        "{name}"
    );
    assert_eq!(
        sum(|w| w.admitted_drm),
        registry.counter("admitted_drm"),
        "{name}"
    );
    assert_eq!(
        sum(|w| w.admitted_chained),
        registry.counter("admitted_chained"),
        "{name}"
    );
    assert_eq!(sum(|w| w.rejected), registry.counter("rejected"), "{name}");
    assert_eq!(
        sum(|w| w.completions),
        registry.counter("completions"),
        "{name}"
    );

    // The span probe must be equally invisible, while still folding the
    // stream into at least one lifecycle span on every golden config.
    let mut span_probe = SpanProbe::new();
    let with_spans = Simulation::run_with_probes(config, &mut [&mut span_probe]);
    assert_eq!(
        with_spans, outcome,
        "{name}: attaching SpanProbe perturbed the outcome"
    );
    let span_set = span_probe.finish(config.duration.as_secs());
    assert!(
        !span_set.spans.is_empty(),
        "{name}: golden config produced no spans"
    );

    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let json = serde_json::to_string_pretty(&outcome).expect("outcome serialises");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, json + "\n").unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    let expected: SimOutcome = serde_json::from_str(text.trim()).expect("fixture parses");
    assert_eq!(
        outcome, expected,
        "{name}: SimOutcome diverged from the golden fixture; if the change \
         is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// Small system, no migration, with window sampling and per-video
/// counters — the paper's baseline configuration.
#[test]
fn golden_small_no_migration() {
    let cfg = SimConfig::builder(SystemSpec::small_paper())
        .duration_hours(3.0)
        .warmup_hours(0.5)
        .sample_interval_secs(900.0)
        .track_per_video(true)
        .seed(1001)
        .build();
    check_golden("small_no_migration", &cfg);
}

/// Small system with DRM plus the interactivity and waitlist extensions —
/// exercises pause/resume events and waitlist reconciliation.
#[test]
fn golden_small_migration_interactive() {
    let cfg = SimConfig::builder(SystemSpec::small_paper())
        .theta(0.0)
        .migration(MigrationPolicy::single_hop())
        .interactivity(0.3, 60.0, 600.0)
        .waitlist(120.0, 50)
        .seed(1002)
        .duration_hours(3.0)
        .warmup_hours(0.5)
        .build();
    check_golden("small_migration_interactive", &cfg);
}

/// Large system, no migration, skewed demand with tertiary-sourced
/// dynamic replication — exercises CopyDone scheduling.
#[test]
fn golden_large_no_migration_replication() {
    let cfg = SimConfig::builder(SystemSpec::large_paper())
        .theta(-0.5)
        .replication(ReplicationSpec::default_paper_scale())
        .seed(1003)
        .duration_hours(2.0)
        .warmup_hours(0.5)
        .build();
    check_golden("large_no_migration_replication", &cfg);
}

/// Large system with DRM under a failure/repair process — exercises
/// ServerDown/ServerUp and emergency evacuation.
#[test]
fn golden_large_migration_failures() {
    let cfg = SimConfig::builder(SystemSpec::large_paper())
        .migration(MigrationPolicy::single_hop())
        .failures(4.0, 0.5)
        .seed(1004)
        .duration_hours(2.0)
        .warmup_hours(0.5)
        .build();
    check_golden("large_migration_failures", &cfg);
}
