//! Integration tests for the `sctsim` command-line interface.

use std::process::Command;

fn sctsim(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_sctsim"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn erlang_subcommand_prints_analytics() {
    let out = sctsim(&["erlang", "--svbr", "33"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("SVBR"));
    assert!(
        text.contains("0.873156"),
        "expected utilization for k=33: {text}"
    );
}

#[test]
fn scenario_round_trips_through_run() {
    let out = sctsim(&[
        "scenario", "--system", "tiny", "--policy", "P4", "--theta", "0.5",
    ]);
    assert!(out.status.success());
    let config_json = String::from_utf8(out.stdout).unwrap();
    assert!(config_json.contains("\"theta\": 0.5"));

    // Feed the emitted config back through `run --config`.
    let dir = std::env::temp_dir().join("sctsim-test");
    std::fs::create_dir_all(&dir).unwrap();
    let cfg_path = dir.join("config.json");
    std::fs::write(&cfg_path, &config_json).unwrap();
    let out_path = dir.join("outcome.json");
    let run = sctsim(&[
        "run",
        "--config",
        cfg_path.to_str().unwrap(),
        "--trials",
        "1",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    let outcome = std::fs::read_to_string(&out_path).unwrap();
    assert!(outcome.contains("utilization"));
}

#[test]
fn run_is_deterministic_across_invocations() {
    let args = [
        "run", "--system", "tiny", "--hours", "1", "--trials", "1", "--seed", "5",
    ];
    let a = sctsim(&args);
    let b = sctsim(&args);
    assert!(a.status.success() && b.status.success());
    assert_eq!(
        a.stdout, b.stdout,
        "same seed must print identical outcomes"
    );
}

#[test]
fn trace_emits_valid_json() {
    let out = sctsim(&[
        "trace", "--system", "tiny", "--hours", "0.2", "--theta", "0.0",
    ]);
    assert!(out.status.success());
    let json = String::from_utf8(out.stdout).unwrap();
    let trace = sct_workload::Trace::from_json(json.trim()).expect("valid trace JSON");
    assert!(!trace.is_empty());
}

#[test]
fn run_trace_exports_parseable_jsonl_without_perturbing_the_outcome() {
    let dir = std::env::temp_dir().join("sctsim-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("events.jsonl");
    let base = [
        "run", "--system", "tiny", "--hours", "1", "--trials", "1", "--seed", "5",
    ];
    let plain = sctsim(&base);
    let mut traced_args: Vec<&str> = base.to_vec();
    traced_args.extend(["--trace", trace_path.to_str().unwrap()]);
    let traced = sctsim(&traced_args);
    assert!(
        plain.status.success() && traced.status.success(),
        "{}",
        String::from_utf8_lossy(&traced.stderr)
    );
    // The probe must be invisible: identical outcome JSON on stdout.
    assert_eq!(plain.stdout, traced.stdout);
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let trace = sct_analysis::Trace::parse(&text).expect("valid JSONL trace");
    assert!(!trace.is_empty());
    let stderr = String::from_utf8(traced.stderr).unwrap();
    assert!(
        stderr.contains(&format!("traced {} events", trace.len())),
        "{stderr}"
    );
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = sctsim(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage"));
}

#[test]
fn run_spans_exports_and_spans_subcommand_analyses_them() {
    let dir = std::env::temp_dir().join("sctsim-test-spans");
    std::fs::create_dir_all(&dir).unwrap();
    let spans_path = dir.join("spans.json");
    let base = [
        "run", "--system", "tiny", "--hours", "1", "--trials", "1", "--seed", "5",
    ];
    let plain = sctsim(&base);
    let mut span_args: Vec<&str> = base.to_vec();
    span_args.extend(["--spans", spans_path.to_str().unwrap()]);
    let spanned = sctsim(&span_args);
    assert!(
        plain.status.success() && spanned.status.success(),
        "{}",
        String::from_utf8_lossy(&spanned.stderr)
    );
    // The probe must be invisible: identical outcome JSON on stdout.
    assert_eq!(plain.stdout, spanned.stdout);
    let stderr = String::from_utf8(spanned.stderr).unwrap();
    assert!(stderr.contains("wrote"), "{stderr}");

    let summary = sctsim(&["spans", spans_path.to_str().unwrap(), "--critical-path"]);
    assert!(
        summary.status.success(),
        "{}",
        String::from_utf8_lossy(&summary.stderr)
    );
    let text = String::from_utf8(summary.stdout).unwrap();
    assert!(text.contains("## Spans"), "{text}");
    assert!(text.contains("## Causal edges"), "{text}");
    assert!(text.contains("Critical path"), "{text}");

    let perfetto_path = dir.join("trace.perfetto.json");
    let export = sctsim(&[
        "spans",
        spans_path.to_str().unwrap(),
        "--perfetto",
        perfetto_path.to_str().unwrap(),
    ]);
    assert!(
        export.status.success(),
        "{}",
        String::from_utf8_lossy(&export.stderr)
    );
    let trace = std::fs::read_to_string(&perfetto_path).unwrap();
    assert!(trace.contains("\"traceEvents\""), "not a trace: {trace}");
}

#[test]
fn spans_flag_conflicts_with_multiple_trials() {
    let out = sctsim(&[
        "run",
        "--system",
        "tiny",
        "--hours",
        "1",
        "--trials",
        "2",
        "--spans",
        "/tmp/x.json",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--spans") && err.contains("--trials 2"),
        "{err}"
    );
}

#[test]
fn trace_flag_conflicts_with_multiple_trials() {
    let out = sctsim(&[
        "run",
        "--system",
        "tiny",
        "--hours",
        "1",
        "--trials",
        "3",
        "--trace",
        "/tmp/x.jsonl",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--trace") && err.contains("--trials 3"),
        "{err}"
    );
}

#[test]
fn spans_subcommand_rejects_a_missing_file() {
    let out = sctsim(&["spans", "/nonexistent/never/spans.json"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("spans.json"), "{err}");
}

#[test]
fn spans_subcommand_rejects_garbage_json() {
    let dir = std::env::temp_dir().join("sctsim-test-spans");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.json");
    std::fs::write(&path, "{not json at all").unwrap();
    let out = sctsim(&["spans", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(!out.stderr.is_empty());
}

#[test]
fn spans_subcommand_needs_a_file_argument() {
    let out = sctsim(&["spans"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("span-set file"), "{err}");
}

#[test]
fn unwritable_spans_path_fails_with_a_diagnostic() {
    let out = sctsim(&[
        "run",
        "--system",
        "tiny",
        "--hours",
        "0.2",
        "--trials",
        "1",
        "--spans",
        "/nonexistent/never/spans.json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("spans.json"), "{err}");
}

#[test]
fn metrics_snapshot_carries_the_loop_profile_and_report_renders_it() {
    let dir = std::env::temp_dir().join("sctsim-test-profile");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics_path = dir.join("m.json");
    let run = sctsim(&[
        "run",
        "--system",
        "tiny",
        "--hours",
        "1",
        "--trials",
        "2",
        "--shards",
        "2",
        "--seed",
        "5",
        "--metrics",
        metrics_path.to_str().unwrap(),
    ]);
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    let text = std::fs::read_to_string(&metrics_path).unwrap();
    let snapshot = sct_analysis::MetricsSnapshot::from_json(&text).expect("valid metrics snapshot");
    let profile = snapshot.profile.as_ref().expect("profile attached");
    assert_eq!(profile.per_shard.len(), 2, "one profile per shard");
    assert!(profile.merged.events > 0);
    assert!(profile.merged.phases.iter().any(|p| p.name == "barrier"));

    let report = sctsim(&["report", metrics_path.to_str().unwrap()]);
    assert!(
        report.status.success(),
        "{}",
        String::from_utf8_lossy(&report.stderr)
    );
    let md = String::from_utf8(report.stdout).unwrap();
    assert!(md.contains("## Loop profile"), "{md}");
    assert!(md.contains("shard 1"), "{md}");
    assert!(
        md.contains("wall time is the max across"),
        "missing merged-vs-per-shard note: {md}"
    );
}

#[test]
fn run_timeseries_exports_a_recording_without_perturbing_the_outcome() {
    let dir = std::env::temp_dir().join("sctsim-test-ts");
    std::fs::create_dir_all(&dir).unwrap();
    let ts_path = dir.join("recording.json");
    let base = [
        "run", "--system", "tiny", "--hours", "2", "--trials", "1", "--seed", "5",
    ];
    let plain = sctsim(&base);
    let mut ts_args: Vec<&str> = base.to_vec();
    ts_args.extend(["--timeseries", ts_path.to_str().unwrap(), "--window", "900"]);
    let recorded = sctsim(&ts_args);
    assert!(
        plain.status.success() && recorded.status.success(),
        "{}",
        String::from_utf8_lossy(&recorded.stderr)
    );
    // The probe must be invisible: identical outcome JSON on stdout.
    assert_eq!(plain.stdout, recorded.stdout);
    let text = std::fs::read_to_string(&ts_path).unwrap();
    let rec = sct_analysis::timeseries::TimeSeriesRecording::from_json(&text)
        .expect("valid recording JSON");
    // 2 h at 900 s windows → 8 windows on the fixed grid.
    assert_eq!(rec.windows.len(), 8);
    assert_eq!(rec.trials, 1);
    let stderr = String::from_utf8(recorded.stderr).unwrap();
    assert!(stderr.contains("wrote time-series recording"), "{stderr}");
}

#[test]
fn timeseries_flag_merges_across_trials() {
    let dir = std::env::temp_dir().join("sctsim-test-ts");
    std::fs::create_dir_all(&dir).unwrap();
    let ts_path = dir.join("merged.json");
    let out = sctsim(&[
        "run",
        "--system",
        "tiny",
        "--hours",
        "1",
        "--trials",
        "2",
        "--seed",
        "5",
        "--timeseries",
        ts_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&ts_path).unwrap();
    let rec = sct_analysis::timeseries::TimeSeriesRecording::from_json(&text)
        .expect("valid recording JSON");
    assert_eq!(rec.trials, 2, "recording must merge both trials");
}

#[test]
fn unwritable_timeseries_path_fails_with_a_diagnostic() {
    let out = sctsim(&[
        "run",
        "--system",
        "tiny",
        "--hours",
        "0.2",
        "--trials",
        "1",
        "--timeseries",
        "/nonexistent/never/recording.json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("recording.json"), "{err}");
}

#[test]
fn window_flag_requires_timeseries() {
    let out = sctsim(&[
        "run", "--system", "tiny", "--hours", "0.2", "--window", "600",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--timeseries"), "{err}");
}

#[test]
fn watch_once_renders_a_dashboard() {
    let dir = std::env::temp_dir().join("sctsim-test-ts");
    std::fs::create_dir_all(&dir).unwrap();
    let ts_path = dir.join("watch.json");
    let run = sctsim(&[
        "run",
        "--system",
        "tiny",
        "--hours",
        "2",
        "--seed",
        "5",
        "--timeseries",
        ts_path.to_str().unwrap(),
    ]);
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    let out = sctsim(&["watch", ts_path.to_str().unwrap(), "--once"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Time-series recording"), "{text}");
    assert!(text.contains("utilization"), "{text}");
}

#[test]
fn watch_rejects_a_missing_file() {
    let out = sctsim(&["watch", "/nonexistent/never/rec.json", "--once"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("rec.json"), "{err}");
}

#[test]
fn diff_subcommand_localizes_seed_divergence() {
    let dir = std::env::temp_dir().join("sctsim-test-ts");
    std::fs::create_dir_all(&dir).unwrap();
    let path_a = dir.join("seed5.json");
    let path_b = dir.join("seed6.json");
    for (seed, path) in [("5", &path_a), ("6", &path_b)] {
        let run = sctsim(&[
            "run",
            "--system",
            "tiny",
            "--hours",
            "2",
            "--seed",
            seed,
            "--timeseries",
            path.to_str().unwrap(),
        ]);
        assert!(
            run.status.success(),
            "{}",
            String::from_utf8_lossy(&run.stderr)
        );
    }
    let out = sctsim(&["diff", path_a.to_str().unwrap(), path_b.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("first divergence: window"), "{text}");

    // Self-diff agrees, and still exits 0.
    let same = sctsim(&["diff", path_a.to_str().unwrap(), path_a.to_str().unwrap()]);
    assert!(same.status.success());
    let text = String::from_utf8(same.stdout).unwrap();
    assert!(text.contains("recordings agree"), "{text}");
}

#[test]
fn diff_rejects_garbage_input() {
    let dir = std::env::temp_dir().join("sctsim-test-ts");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage-rec.json");
    std::fs::write(&path, "{not a recording").unwrap();
    let out = sctsim(&["diff", path.to_str().unwrap(), path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(!out.stderr.is_empty());
}

#[test]
fn unwritable_metrics_path_fails_with_a_diagnostic() {
    let out = sctsim(&[
        "run",
        "--system",
        "tiny",
        "--hours",
        "0.2",
        "--trials",
        "1",
        "--metrics",
        "/nonexistent/never/metrics.json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("metrics.json"), "{err}");
}

#[test]
fn run_exec_trace_exports_without_perturbing_the_outcome_and_exec_analyzes_it() {
    let dir = std::env::temp_dir().join("sctsim-test-exec");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("exec.json");
    let base = [
        "run",
        "--system",
        "tiny",
        "--hours",
        "1",
        "--trials",
        "1",
        "--seed",
        "5",
        "--shards",
        "2",
        "--threads",
        "2",
    ];
    let plain = sctsim(&base);
    let mut traced_args: Vec<&str> = base.to_vec();
    traced_args.extend(["--exec-trace", trace_path.to_str().unwrap()]);
    let traced = sctsim(&traced_args);
    assert!(
        plain.status.success() && traced.status.success(),
        "{}",
        String::from_utf8_lossy(&traced.stderr)
    );
    // The recorder must be invisible: identical outcome JSON on stdout.
    assert_eq!(plain.stdout, traced.stdout);
    let stderr = String::from_utf8(traced.stderr).unwrap();
    assert!(stderr.contains("wrote execution-plane trace"), "{stderr}");

    // The exported document is both a Perfetto trace and analyzer input.
    let text = std::fs::read_to_string(&trace_path).unwrap();
    assert!(text.contains("\"traceEvents\""), "not a trace: {text}");
    let trace = sct_analysis::exec::ExecTrace::from_json(&text).expect("valid exec trace");
    assert_eq!(trace.shards, 2);

    let out = sctsim(&["exec", trace_path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(report.contains("# Execution-plane analysis"), "{report}");
    assert!(report.contains("Amdahl decomposition"), "{report}");
    assert!(report.contains("bottleneck: "), "{report}");
}

#[test]
fn exec_trace_flag_conflicts_with_multiple_trials() {
    let out = sctsim(&[
        "run",
        "--system",
        "tiny",
        "--hours",
        "1",
        "--trials",
        "2",
        "--exec-trace",
        "/tmp/x.json",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--exec-trace") && err.contains("--trials 2"),
        "{err}"
    );
}

#[test]
fn exec_subcommand_rejects_a_missing_file() {
    let out = sctsim(&["exec", "/nonexistent/never/exec.json"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("exec.json"), "{err}");
}

#[test]
fn profile_reports_execution_plane_counters_and_fallback_reason() {
    // Eligible parallel run: the profile must say how bursts dispatched.
    let engaged = sctsim(&[
        "run",
        "--system",
        "tiny",
        "--hours",
        "1",
        "--seed",
        "5",
        "--shards",
        "2",
        "--threads",
        "2",
        "--profile",
    ]);
    assert!(
        engaged.status.success(),
        "{}",
        String::from_utf8_lossy(&engaged.stderr)
    );
    let err = String::from_utf8(engaged.stderr).unwrap();
    assert!(err.contains("execution plane:"), "{err}");
    assert!(err.contains("epochs ("), "{err}");

    // --threads > 1 with a single shard: the parallel path can never
    // engage, and the profile must say why.
    let fallback = sctsim(&[
        "run",
        "--system",
        "tiny",
        "--hours",
        "1",
        "--seed",
        "5",
        "--threads",
        "2",
        "--profile",
    ]);
    assert!(fallback.status.success());
    let err = String::from_utf8(fallback.stderr).unwrap();
    assert!(err.contains("parallel epochs never engaged"), "{err}");
    assert!(err.contains("--shards"), "{err}");
}

#[test]
fn bench_diff_reports_the_worst_cell_and_gates_regressions() {
    let dir = std::env::temp_dir().join("sctsim-test-benchdiff");
    std::fs::create_dir_all(&dir).unwrap();
    let old_path = dir.join("old.json");
    let new_path = dir.join("new.json");
    std::fs::write(
        &old_path,
        r#"{"grid": {"events_per_sec": 100.0}, "huge": {"events_per_sec": 200.0}}"#,
    )
    .unwrap();
    std::fs::write(
        &new_path,
        r#"{"grid": {"events_per_sec": 50.0}, "huge": {"events_per_sec": 210.0}}"#,
    )
    .unwrap();

    // Without a gate: report only, exit 0.
    let out = sctsim(&[
        "bench-diff",
        old_path.to_str().unwrap(),
        new_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("worst-moved cell"), "{text}");
    assert!(text.contains("grid"), "{text}");

    // A 50% regression trips a 25% gate.
    let gated = sctsim(&[
        "bench-diff",
        old_path.to_str().unwrap(),
        new_path.to_str().unwrap(),
        "--gate",
        "25",
    ]);
    assert_eq!(gated.status.code(), Some(1));
    let err = String::from_utf8(gated.stderr).unwrap();
    assert!(err.contains("regressed"), "{err}");

    // A self-diff passes any gate.
    let clean = sctsim(&[
        "bench-diff",
        old_path.to_str().unwrap(),
        old_path.to_str().unwrap(),
        "--gate",
        "25",
    ]);
    assert!(
        clean.status.success(),
        "{}",
        String::from_utf8_lossy(&clean.stderr)
    );
    let err = String::from_utf8(clean.stderr).unwrap();
    assert!(err.contains("no cell regressed"), "{err}");
}

#[test]
fn bench_diff_rejects_garbage_input() {
    let dir = std::env::temp_dir().join("sctsim-test-benchdiff");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.json");
    std::fs::write(&path, "{not json").unwrap();
    let out = sctsim(&["bench-diff", path.to_str().unwrap(), path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(!out.stderr.is_empty());
}

#[test]
fn watch_tolerates_a_mid_write_recording_and_recovers() {
    use std::io::Read;

    let dir = std::env::temp_dir().join("sctsim-test-watch-midwrite");
    std::fs::create_dir_all(&dir).unwrap();
    let rec_path = dir.join("rec.json");
    // Start with a truncated document, as if a writer were mid-flush.
    std::fs::write(&rec_path, "{\"version\": 1, \"trials\":").unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_sctsim"))
        .args([
            "watch",
            rec_path.to_str().unwrap(),
            "--interval-secs",
            "0.2",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("watch spawns");

    // Let it chew on the partial file for a couple of ticks...
    std::thread::sleep(std::time::Duration::from_millis(600));
    assert!(
        child.try_wait().expect("try_wait").is_none(),
        "watch must keep retrying on a partial file, not exit"
    );

    // ...then complete the write and give it time to recover.
    let run = sctsim(&[
        "run",
        "--system",
        "tiny",
        "--hours",
        "2",
        "--seed",
        "5",
        "--timeseries",
        rec_path.to_str().unwrap(),
    ]);
    assert!(run.status.success());
    std::thread::sleep(std::time::Duration::from_millis(600));

    child.kill().expect("kill watch");
    child.wait().expect("reap watch");
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut stderr)
        .ok();
    let mut stdout = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut stdout)
        .ok();
    assert!(
        stderr.contains("unreadable mid-write"),
        "expected a retry note on stderr: {stderr}"
    );
    assert!(
        stdout.contains("Time-series recording"),
        "watch never rendered the completed recording: {stdout}"
    );
}
