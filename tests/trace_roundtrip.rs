//! End-to-end check of the event-trace pipeline: run a trial with the
//! JSONL probe attached, parse the file with the sct-analysis reader, and
//! reconcile the event counts against the trial's own `SimOutcome` — the
//! trace and the summary are two views of one run and must agree exactly.

use sct_analysis::Trace;
use sct_workload::SystemSpec;
use semi_continuous_vod::core::config::SimConfig;
use semi_continuous_vod::core::simulation::Simulation;
use semi_continuous_vod::core::JsonlTraceProbe;

fn traced_run(cfg: &SimConfig, name: &str) -> (semi_continuous_vod::core::SimOutcome, Trace) {
    let dir = std::env::temp_dir().join("sct-trace-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut probe = JsonlTraceProbe::create(&path).unwrap();
    let outcome = Simulation::run_with_probes(cfg, &mut [&mut probe]);
    let lines = probe.finish().unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let trace = Trace::parse(&text).unwrap();
    assert_eq!(trace.len() as u64, lines, "probe line count disagrees");
    (outcome, trace)
}

#[test]
fn trace_reconciles_with_outcome_on_a_plain_run() {
    let cfg = SimConfig::builder(SystemSpec::tiny_test())
        .duration_hours(2.0)
        .warmup_hours(0.25)
        .sample_interval_secs(600.0)
        .track_per_video(true)
        .seed(11)
        .build();
    let (out, trace) = traced_run(&cfg, "plain.jsonl");
    assert_eq!(
        out.stats.arrivals,
        trace.count("Admitted") + trace.count("Rejected"),
        "every arrival is admitted or rejected: {:?}",
        trace.counts_by_kind()
    );
    assert_eq!(out.stats.rejected, trace.count("Rejected"));
    assert_eq!(out.completions, trace.count("Completed"));
    assert_eq!(out.server_failures, trace.count("ServerDown"));
    assert_eq!(out.pauses_applied, trace.count("Paused"));
    // Windowed samples appear once per interval and carry the same values
    // the outcome reports.
    let samples: Vec<&sct_analysis::TraceEvent> = trace.of_kind("WindowSample").collect();
    assert_eq!(samples.len(), out.window_utilization.len());
    for (i, (ev, &w)) in samples.iter().zip(&out.window_utilization).enumerate() {
        assert_eq!(ev.num_field("index"), Some(i as f64));
        assert_eq!(ev.num_field("utilization"), Some(w), "window {i}");
    }
    // Per-video counters fold the same Admitted/Rejected records.
    let arrivals: u64 = out.per_video_arrivals.iter().map(|&x| x as u64).sum();
    assert_eq!(arrivals, out.stats.arrivals);
    // The outcome the probe observed is the outcome a plain run computes.
    assert_eq!(out, Simulation::run(&cfg));
}

#[test]
fn trace_reconciles_waitlist_migration_and_interactivity() {
    let cfg = SimConfig::builder(SystemSpec::tiny_test())
        .duration_hours(4.0)
        .warmup_hours(0.25)
        .theta(0.0)
        .policy(semi_continuous_vod::core::policies::Policy::P4)
        .interactivity(0.5, 30.0, 300.0)
        .waitlist(300.0, 100)
        .seed(13)
        .build();
    let (out, trace) = traced_run(&cfg, "busy.jsonl");
    assert_eq!(
        out.stats.arrivals,
        trace.count("Admitted") + trace.count("Rejected")
    );
    // Waitlist reconciliation: a served waiter was first recorded as a
    // rejection, then recovered — the outcome's final rejection count is
    // the raw rejections minus the recoveries.
    assert!(out.waitlist.served > 0, "waitlist must fire in this config");
    assert_eq!(out.waitlist.enqueued, trace.count("WaitlistQueued"));
    assert_eq!(out.waitlist.served, trace.count("WaitlistServed"));
    assert_eq!(
        out.stats.rejected,
        trace.count("Rejected") - trace.count("WaitlistServed")
    );
    let expired: u64 = trace
        .of_kind("WaitlistExpired")
        .map(|e| e.num_field("count").unwrap() as u64)
        .sum();
    assert_eq!(out.waitlist.expired, expired);
    // Migration admissions narrate one Migrated record per hop.
    assert!(out.stats.accepted_via_migration > 0, "migration must fire");
    let migrated_path = trace
        .of_kind("Admitted")
        .filter(|e| {
            e.payload
                .as_map()
                .and_then(|m| m.iter().find(|(k, _)| k == "path"))
                .map(|(_, v)| *v != serde::Value::Str("Direct".into()))
                .unwrap_or(false)
        })
        .count() as u64;
    assert_eq!(out.stats.accepted_via_migration, migrated_path);
    assert!(
        trace.count("Migrated") >= migrated_path,
        "each non-direct admission migrates at least one victim"
    );
    assert_eq!(out.pauses_applied, trace.count("Paused"));
    assert!(
        trace.count("Resumed") <= trace.count("Paused"),
        "a resume only lands on a stream that actually paused"
    );
    assert_eq!(out.completions, trace.count("Completed"));
}

#[test]
fn trace_reconciles_failures_and_replication() {
    use semi_continuous_vod::prelude::{MigrationPolicy, ReplicationSpec};
    let cfg = SimConfig::builder(SystemSpec::tiny_test())
        .duration_hours(6.0)
        .warmup_hours(0.5)
        .theta(-0.5)
        .migration(MigrationPolicy::single_hop())
        .replication(ReplicationSpec::default_paper_scale())
        .failures(2.0, 0.5)
        .seed(17)
        .build();
    let (out, trace) = traced_run(&cfg, "faulty.jsonl");
    assert!(out.server_failures > 0, "failures must fire in this config");
    assert_eq!(out.server_failures, trace.count("ServerDown"));
    assert!(trace.count("ServerUp") <= trace.count("ServerDown"));
    let relocated: u64 = trace
        .of_kind("ServerDown")
        .map(|e| e.num_field("relocated").unwrap() as u64)
        .sum();
    let dropped: u64 = trace
        .of_kind("ServerDown")
        .map(|e| e.num_field("dropped").unwrap() as u64)
        .sum();
    assert_eq!(out.stats.relocated_on_failure, relocated);
    assert_eq!(out.stats.dropped_on_failure, dropped);
    // Every emergency relocation is narrated individually too.
    let emergency = trace
        .of_kind("Migrated")
        .filter(|e| {
            e.payload
                .as_map()
                .and_then(|m| m.iter().find(|(k, _)| k == "emergency"))
                .map(|(_, v)| *v == serde::Value::Bool(true))
                .unwrap_or(false)
        })
        .count() as u64;
    assert_eq!(emergency, relocated);
    assert_eq!(out.replication.copies_started, trace.count("CopyStarted"));
    assert!(
        trace.count("CopyDone") <= trace.count("CopyStarted"),
        "copies finish at most once"
    );
}
