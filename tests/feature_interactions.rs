//! Cross-feature interaction tests: every extension must compose with
//! every other without breaking the engine invariants or the accounting.

use sct_admission::{MigrationPolicy, ReplicationSpec, WaitlistSpec};
use sct_core::config::SimConfig;
use sct_core::simulation::Simulation;
use sct_workload::{HeterogeneityKind, SystemSpec};

fn drm() -> MigrationPolicy {
    MigrationPolicy {
        handoff_latency_secs: 0.0,
        ..MigrationPolicy::single_hop()
    }
}

fn base() -> sct_core::config::SimConfigBuilder {
    SimConfig::builder(SystemSpec::tiny_test())
        .duration_hours(6.0)
        .warmup_hours(0.5)
        .staging_fraction(0.2)
        .check_invariants(true)
}

/// Waitlist + server failures: a failed server's waiters keep waiting and
/// get served on repair; accounting still reconciles.
#[test]
fn waitlist_survives_failures() {
    let out = Simulation::run(
        &base()
            .theta(-0.5)
            .waitlist(600.0, 1000)
            .failures(1.5, 0.25)
            .seed(101)
            .build(),
    );
    assert!(out.server_failures > 0);
    assert!(out.waitlist.enqueued > 0);
    out.stats.check();
    assert!(out.utilization > 0.0 && out.utilization <= 1.0 + 1e-9);
}

/// Pauses + migration: a paused stream can still be migrated (its staged
/// data rides along), and invariants hold throughout.
#[test]
fn pauses_compose_with_migration() {
    let out = Simulation::run(
        &base()
            .theta(0.0)
            .migration(drm())
            .interactivity(0.6, 60.0, 300.0)
            .seed(103)
            .build(),
    );
    assert!(out.pauses_applied > 0);
    assert!(out.stats.accepted_via_migration > 0);
    out.stats.check();
}

/// Replication + failures: copies abort cleanly when servers die; the
/// replica map never references a replica that was not completed.
#[test]
fn replication_composes_with_failures() {
    let out = Simulation::run(
        &base()
            .theta(-1.0)
            .replication(ReplicationSpec::default_paper_scale())
            .failures(1.0, 0.25)
            .seed(107)
            .build(),
    );
    assert!(out.server_failures > 0);
    assert!(out.replication.copies_started > 0);
    assert!(
        out.replication.replicas_created + out.replication.copies_aborted
            <= out.replication.copies_started
    );
    out.stats.check();
}

/// Batching + diurnal peaks: correlated demand spikes are exactly where
/// cohort service pays off; the run must stay consistent end to end.
#[test]
fn batching_composes_with_diurnal() {
    let out = Simulation::run(
        &base()
            .theta(-1.0)
            .waitlist_spec(WaitlistSpec::batching(300.0, 10_000))
            .diurnal(1.0, 2.0)
            .seed(109)
            .build(),
    );
    assert!(out.waitlist.enqueued > 0);
    out.stats.check();
    assert!(out.utilization > 0.0 && out.utilization <= 1.0 + 1e-9);
}

/// Everything at once, heterogeneous cluster included, for several seeds.
#[test]
fn kitchen_sink_composition() {
    for seed in [1u64, 2, 3] {
        let out = Simulation::run(
            &base()
                .theta(-0.25)
                .migration(drm())
                .heterogeneity(HeterogeneityKind::Bandwidth, 0.5)
                .failures(2.0, 0.25)
                .interactivity(0.3, 60.0, 300.0)
                .replication(ReplicationSpec::default_paper_scale())
                .waitlist_spec(WaitlistSpec::batching(300.0, 10_000))
                .diurnal(0.75, 3.0)
                .sample_interval_secs(600.0)
                .track_per_video(true)
                .seed(seed)
                .build(),
        );
        out.stats.check();
        assert!(out.utilization > 0.0 && out.utilization <= 1.0 + 1e-9);
        // Per-video counters still reconcile with the waitlist-adjusted
        // totals.
        let arrivals: u64 = out.per_video_arrivals.iter().map(|&x| x as u64).sum();
        assert_eq!(arrivals, out.stats.arrivals);
        // Sampled windows average to the headline utilization.
        let mean: f64 =
            out.window_utilization.iter().sum::<f64>() / out.window_utilization.len() as f64;
        assert!((mean - out.utilization).abs() < 1e-9);
    }
}
