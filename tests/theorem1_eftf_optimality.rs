//! Empirical check of the paper's Theorem 1.
//!
//! > "If the videos are not paused and there are no limits on the
//! > bandwidth at which clients can receive data, then EFTF is optimal
//! > among minimum-flow algorithms, in that for any set of request
//! > arrivals which can all be accommodated by any scheduling algorithm,
//! > EFTF will accommodate [them]."
//!
//! We drive a single server with every minimum-flow scheduler in the crate
//! over randomized arrival sets with unbounded clients. Whenever *any*
//! alternative scheduler accepts every request, EFTF must too. (With
//! receive caps the theorem does not hold and the paper notes no algorithm
//! can be optimal; the second test documents that EFTF still does at least
//! as well as the no-workahead baseline on aggregate across seeds.)

use proptest::prelude::*;
use sct_cluster::ServerId;
use sct_core::oracle::audit_engines;
use sct_media::{ClientProfile, VideoId};
use sct_simcore::SimTime;
use sct_transmission::{SchedulerKind, ServerEngine, Stream, StreamId};

const VIEW: f64 = 3.0;

/// One synthetic request: arrival offset from the previous arrival and an
/// object size in megabits.
#[derive(Clone, Debug)]
struct Req {
    gap: f64,
    size_mb: f64,
}

/// Runs a single-server minimum-flow simulation and returns the number of
/// accepted requests.
fn run_single_server(
    kind: SchedulerKind,
    capacity: f64,
    reqs: &[Req],
    client: ClientProfile,
) -> usize {
    let mut engine = ServerEngine::new(ServerId(0), capacity, kind);
    let mut clock = SimTime::ZERO;
    let mut accepted = 0usize;
    let mut t = 0.0;
    for (i, r) in reqs.iter().enumerate() {
        t += r.gap;
        let arrival = SimTime::from_secs(t);
        // Drain intrinsic events up to the arrival.
        while let Some((when, _)) = engine.next_event_after(clock) {
            if when > arrival {
                break;
            }
            engine.advance_to(when);
            engine.reap_finished(when);
            engine.reschedule(when);
            clock = when;
        }
        engine.advance_to(arrival);
        engine.reap_finished(arrival);
        clock = arrival;
        if engine.can_admit(VIEW) {
            let stream = Stream::new(
                StreamId(i as u64),
                VideoId(i as u32),
                r.size_mb,
                VIEW,
                client,
                arrival,
            );
            engine.admit(stream, arrival);
            accepted += 1;
        } else {
            engine.reschedule(arrival);
        }
        // The oracle's invariant auditor after every decision: commitment
        // ledger, capacity bound, minimum flow, staging bounds.
        if let Err(d) = audit_engines(0, arrival, std::slice::from_ref(&engine)) {
            panic!("{d}");
        }
    }
    accepted
}

fn request_set() -> impl Strategy<Value = Vec<Req>> {
    // Sizes 30–600 Mb (10 s – 200 s of playback), gaps tuned so the load
    // hovers around capacity: with 4 slots and mean size 315 Mb, the mean
    // service at b_view is ~105 s → per-slot inter-arrival ~26 s keeps the
    // system near saturation where schedulers actually differ.
    prop::collection::vec(
        (0.0f64..60.0, 30.0f64..600.0).prop_map(|(gap, size_mb)| Req { gap, size_mb }),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Theorem 1: with unbounded clients, if any minimum-flow scheduler
    /// accepts the whole arrival set, EFTF does too.
    #[test]
    fn eftf_accommodates_whatever_any_min_flow_scheduler_can(reqs in request_set()) {
        let capacity = 12.0; // 4 slots
        let client = ClientProfile::unbounded();
        let eftf = run_single_server(SchedulerKind::Eftf, capacity, &reqs, client);
        for alt in [
            SchedulerKind::LatestFinishFirst,
            SchedulerKind::ProportionalShare,
            SchedulerKind::NoWorkahead,
        ] {
            let alt_accepted = run_single_server(alt, capacity, &reqs, client);
            if alt_accepted == reqs.len() {
                prop_assert_eq!(
                    eftf, reqs.len(),
                    "{:?} accommodated all {} requests but EFTF only {}",
                    alt, reqs.len(), eftf
                );
            }
        }
    }

    /// Acceptance counts are never pathological: every scheduler admits at
    /// least the requests that arrive into an idle server, and no
    /// scheduler can admit more than everything.
    #[test]
    fn acceptance_counts_are_sane(reqs in request_set()) {
        let capacity = 12.0;
        let client = ClientProfile::unbounded();
        for kind in SchedulerKind::ALL {
            let n = run_single_server(kind, capacity, &reqs, client);
            prop_assert!(n >= 1, "{kind:?} must accept into an idle server");
            prop_assert!(n <= reqs.len());
        }
    }
}

/// Note: Theorem 1 does *not* imply per-instance count dominance — an
/// early EFTF acceptance can occupy a slot that later blocks two arrivals
/// the lazy baseline would have taken. Dominance holds on aggregate, which
/// is what the paper's utilization metric measures.
#[test]
fn eftf_beats_baseline_on_aggregate_with_unbounded_clients() {
    use sct_simcore::Rng;
    let mut rng = Rng::new(0x7E01);
    let client = ClientProfile::unbounded();
    let mut eftf_total = 0usize;
    let mut none_total = 0usize;
    for _ in 0..300 {
        let n = rng.range_usize(5, 40);
        let reqs: Vec<Req> = (0..n)
            .map(|_| Req {
                gap: rng.range_f64(0.0, 60.0),
                size_mb: rng.range_f64(30.0, 600.0),
            })
            .collect();
        eftf_total += run_single_server(SchedulerKind::Eftf, 12.0, &reqs, client);
        none_total += run_single_server(SchedulerKind::NoWorkahead, 12.0, &reqs, client);
    }
    assert!(
        eftf_total > none_total,
        "EFTF {eftf_total} should beat continuous {none_total} on aggregate"
    );
}

/// With a finite receive cap the theorem's premise fails; this documents
/// that EFTF still wins on aggregate over many random instances (it is a
/// heuristic there, per §3.3 — "empirically it does very well").
#[test]
fn eftf_beats_baseline_on_aggregate_with_receive_caps() {
    use sct_simcore::Rng;
    let mut rng = Rng::new(0xEF7F);
    let client = ClientProfile::new(f64::INFINITY, 30.0);
    let mut eftf_total = 0usize;
    let mut none_total = 0usize;
    let mut lff_total = 0usize;
    for _ in 0..300 {
        let n = rng.range_usize(5, 40);
        let reqs: Vec<Req> = (0..n)
            .map(|_| Req {
                gap: rng.range_f64(0.0, 60.0),
                size_mb: rng.range_f64(30.0, 600.0),
            })
            .collect();
        eftf_total += run_single_server(SchedulerKind::Eftf, 12.0, &reqs, client);
        none_total += run_single_server(SchedulerKind::NoWorkahead, 12.0, &reqs, client);
        lff_total += run_single_server(SchedulerKind::LatestFinishFirst, 12.0, &reqs, client);
    }
    assert!(
        eftf_total > none_total,
        "EFTF {eftf_total} should beat continuous {none_total} on aggregate"
    );
    assert!(
        eftf_total >= lff_total,
        "EFTF {eftf_total} should not lose to LFF {lff_total} on aggregate"
    );
}
