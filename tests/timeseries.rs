//! Flight-recorder integration: windowed recordings, SLO alerting, and
//! run-to-run diffing against pinned fixed-seed expectations.
//!
//! The unit tests in `sct-core::timeseries` and
//! `sct-analysis::{timeseries,slo}` cover the mechanics (window grid,
//! counter reconciliation, rule state machines). These tests pin the
//! end-to-end behaviour the tooling promises: a flash-crowd scenario
//! fires the default burn-rate rule at a known window, and `diff`
//! localizes where two seeds part ways.

use semi_continuous_vod::analysis::timeseries::diff;
use semi_continuous_vod::prelude::*;

/// A flash-crowd configuration: strong diurnal modulation drives the
/// arrival rate to double the calibrated mean at the peak, pushing the
/// cluster into a sustained rejection burn.
fn flash_crowd(seed: u64) -> SimConfig {
    SimConfig::builder(SystemSpec::small_paper())
        .diurnal(1.0, 6.0)
        .duration_hours(6.0)
        .warmup_hours(0.5)
        .seed(seed)
        .build()
}

fn record(cfg: &SimConfig, window_secs: f64) -> TimeSeriesRecording {
    let mut probe = TimeSeriesProbe::new(cfg, window_secs);
    Simulation::run_with_probes(cfg, &mut [&mut probe]);
    probe.finish()
}

/// The default policy's multi-window burn-rate rule fires as the flash
/// crowd saturates the cluster — at a pinned window for the pinned
/// seed. A regression in window accounting, rule state, or alert
/// emission moves (or silences) the alert.
#[test]
fn burn_rate_alert_fires_at_a_pinned_window_in_a_flash_crowd() {
    let rec = record(&flash_crowd(42), 600.0);
    assert_eq!(rec.windows.len(), 36);
    let burn: Vec<_> = rec
        .alerts
        .iter()
        .filter(|a| a.rule == "rejection_burn")
        .collect();
    assert!(
        !burn.is_empty(),
        "flash crowd produced no burn-rate alert; alerts: {:?}",
        rec.alerts
    );
    assert_eq!(burn[0].window, 11, "burn-rate alert moved: {:?}", burn[0]);
    assert_eq!(burn[0].metric, "rejection_ratio");
    // The alert fires while the short-window mean is in violation.
    assert!(burn[0].value > burn[0].threshold);
}

/// `diff` on two seeds of the same scenario reports the first window
/// and metric where the recordings part ways — pinned for this pair.
#[test]
fn diff_localizes_the_first_divergent_window_between_two_seeds() {
    let width = 900.0;
    let a = record(&flash_crowd(42), width);
    let b = record(&flash_crowd(43), width);
    let report = diff(&a, &b, 1e-9).expect("same grid");
    let first = report.first.as_ref().expect("seeds must diverge");
    assert_eq!(first.window, 0, "first divergence moved: {first:?}");
    assert_eq!(
        first.metric, "arrivals",
        "first divergence moved: {first:?}"
    );
    let text = report.to_text();
    assert!(text.contains("first divergence: window 0"), "{text}");
}

/// `diff` of a recording against itself reports agreement.
#[test]
fn diff_of_identical_recordings_reports_agreement() {
    let a = record(&flash_crowd(42), 900.0);
    let report = diff(&a, &a, 1e-9).expect("same grid");
    assert!(report.first.is_none());
    assert!(report.to_text().contains("recordings agree"), "diff text");
}

/// Merging per-trial recordings (what `sctsim run --trials N
/// --timeseries` does) sums counters, averages gauges trials-weighted,
/// and concatenates alerts with their trial tags intact.
#[test]
fn recordings_merge_across_trials() {
    let plan = TrialPlan::new(2, 42);
    let mut merged: Option<TimeSeriesRecording> = None;
    let mut singles = Vec::new();
    for i in 0..2 {
        let mut cfg = flash_crowd(0);
        cfg.seed = plan.seed(i);
        let mut rec = record(&cfg, 600.0);
        rec.set_trial(i);
        singles.push(rec.clone());
        match merged.as_mut() {
            Some(m) => m.merge(&rec).expect("same grid"),
            None => merged = Some(rec),
        }
    }
    let merged = merged.unwrap();
    assert_eq!(merged.trials, 2);
    assert_eq!(merged.windows.len(), singles[0].windows.len());
    for (w, row) in merged.windows.iter().enumerate() {
        assert_eq!(
            row.arrivals,
            singles[0].windows[w].arrivals + singles[1].windows[w].arrivals,
            "window {w}: counters must sum across trials"
        );
        let mean = (singles[0].windows[w].utilization + singles[1].windows[w].utilization) / 2.0;
        assert!(
            (row.utilization - mean).abs() < 1e-12,
            "window {w}: gauges must average across equal-weight trials"
        );
    }
    assert_eq!(
        merged.alerts.len(),
        singles[0].alerts.len() + singles[1].alerts.len()
    );
    // Alerts keep their originating trial tag through the merge.
    for trial in [0, 1] {
        let from_trial = merged.alerts.iter().filter(|a| a.trial == trial).count();
        assert_eq!(from_trial, singles[trial as usize].alerts.len());
    }
}

/// The dashboard renders every headline series plus the alert tail for
/// a real recording — the `watch` subcommand shows exactly this text.
#[test]
fn dashboard_renders_headlines_and_alerts() {
    let rec = record(&flash_crowd(42), 600.0);
    let text = render_dashboard(&rec, 72);
    for needle in [
        "Time-series recording: 36 windows x 600s",
        "utilization",
        "arrivals/s",
        "rejection ratio",
        "waitlist depth",
        "alerts (",
        "rejection_burn",
    ] {
        assert!(
            text.contains(needle),
            "dashboard missing {needle:?}:\n{text}"
        );
    }
}

/// A custom SLO policy round-trips through JSON and drives the probe:
/// an absurdly low threshold fires immediately, proving `--slo FILE`
/// swaps the rule set rather than decorating the default one.
#[test]
fn custom_slo_policy_replaces_the_default_rules() {
    let policy_json = SloPolicy::default_policy().to_json();
    let policy = SloPolicy::from_json(&policy_json).expect("round trip");
    assert_eq!(policy, SloPolicy::default_policy());

    let custom = SloPolicy {
        rules: vec![SloRule::Threshold {
            name: "any_arrivals".to_string(),
            metric: "arrivals".to_string(),
            op: semi_continuous_vod::analysis::slo::SloOp::Above,
            threshold: 0.0,
            for_windows: 1,
        }],
    };
    let cfg = flash_crowd(42);
    let mut probe = TimeSeriesProbe::with_policy(&cfg, 600.0, custom);
    Simulation::run_with_probes(&cfg, &mut [&mut probe]);
    let rec = probe.finish();
    assert!(rec.alerts.iter().all(|a| a.rule == "any_arrivals"));
    assert_eq!(
        rec.alerts.first().map(|a| a.window),
        Some(0),
        "threshold over a live metric must fire in the first window"
    );
}
