//! Shard × thread invariance matrix.
//!
//! PR "parallel shard execution" claim: dispatching epoch bursts on a
//! worker-thread pool changes *nothing observable*. The epoch protocol
//! (`sct_simcore::parallel`) elects every shard below the plane's head,
//! runs their bursts concurrently against private queues, and merges
//! the logs in global `(time, seq)` order — so the RNG draw sequence,
//! the event stream, and every outcome float are bit-identical for any
//! shard count *and* any thread count. This test runs the four golden
//! scenarios (the same configs `golden_outcomes.rs` locks against
//! pre-refactor fixtures) plus a flash-crowd scenario across
//! `shards ∈ {1, 2, 4} × threads ∈ {1, 2, 8}`, asserting identical
//! [`SimOutcome`]s and span sets against the single-threaded
//! `shards = 1` baseline, and identical time-series `windows`/`alerts`
//! sections for the recording probe.
//!
//! Two of the golden scenarios (interactivity/waitlist, failures) are
//! *ineligible* for the parallel path and must silently fall back to
//! the classic loop at every thread count; they are in the matrix
//! precisely to pin that fallback. Combined with `golden_outcomes.rs`
//! (which pins `shards = 1` to pre-refactor snapshots), this
//! transitively pins every shard × thread combination to the
//! pre-sharding loop.

use sct_core::spans::capture;
use semi_continuous_vod::prelude::*;

const SHARDS: [usize; 3] = [1, 2, 4];
const THREADS: [usize; 3] = [1, 2, 8];

/// Runs `build(shards, threads)` over the full matrix and asserts
/// outcomes and span sets match the single-threaded `shards = 1`
/// baseline bit-for-bit.
fn assert_parallel_invariant(name: &str, build: impl Fn(usize, usize) -> SimConfig) {
    let (base_outcome, base_spans) = capture(&build(1, 1));
    assert!(
        !base_spans.spans.is_empty(),
        "{name}: scenario produced no spans — matrix would be vacuous"
    );
    for &shards in &SHARDS {
        for &threads in &THREADS {
            if (shards, threads) == (1, 1) {
                continue;
            }
            let (outcome, spans) = capture(&build(shards, threads));
            assert_eq!(
                outcome, base_outcome,
                "{name}: SimOutcome diverged at shards = {shards}, threads = {threads}"
            );
            assert_eq!(
                spans, base_spans,
                "{name}: span set diverged at shards = {shards}, threads = {threads}"
            );
        }
    }
}

#[test]
fn parallel_matrix_small_no_migration() {
    assert_parallel_invariant("small_no_migration", |shards, threads| {
        SimConfig::builder(SystemSpec::small_paper())
            .duration_hours(3.0)
            .warmup_hours(0.5)
            .sample_interval_secs(900.0)
            .track_per_video(true)
            .shards(shards)
            .threads(threads)
            .offload_min_events(0)
            .seed(1001)
            .build()
    });
}

#[test]
fn parallel_matrix_small_migration_interactive() {
    // Interactivity + waitlist make this config ineligible for epochs:
    // every cell must take the classic fallback and still agree.
    assert_parallel_invariant("small_migration_interactive", |shards, threads| {
        SimConfig::builder(SystemSpec::small_paper())
            .theta(0.0)
            .migration(MigrationPolicy::single_hop())
            .interactivity(0.3, 60.0, 600.0)
            .waitlist(120.0, 50)
            .shards(shards)
            .threads(threads)
            .seed(1002)
            .duration_hours(3.0)
            .warmup_hours(0.5)
            .build()
    });
}

#[test]
fn parallel_matrix_large_no_migration_replication() {
    // Dynamic replication is likewise ineligible: classic fallback.
    assert_parallel_invariant("large_no_migration_replication", |shards, threads| {
        SimConfig::builder(SystemSpec::large_paper())
            .theta(-0.5)
            .replication(ReplicationSpec::default_paper_scale())
            .shards(shards)
            .threads(threads)
            .seed(1003)
            .duration_hours(2.0)
            .warmup_hours(0.5)
            .build()
    });
}

#[test]
fn parallel_matrix_large_migration_failures() {
    // Failures route ServerDown/Up onto worker shards: ineligible,
    // classic fallback at every thread count.
    assert_parallel_invariant("large_migration_failures", |shards, threads| {
        SimConfig::builder(SystemSpec::large_paper())
            .migration(MigrationPolicy::single_hop())
            .failures(4.0, 0.5)
            .shards(shards)
            .threads(threads)
            .seed(1004)
            .duration_hours(2.0)
            .warmup_hours(0.5)
            .build()
    });
}

/// Flash crowd: heavily skewed demand under a strong diurnal swing, so
/// arrival bursts pile wakes onto the popular videos' holders — the
/// scenario where epoch bursts have the most simultaneous work and a
/// reordering bug would surface first. Eligible for the parallel path;
/// `offload_min_events(0)` forces real thread dispatch for every epoch.
fn flash_crowd(shards: usize, threads: usize) -> SimConfig {
    SimConfig::builder(SystemSpec::small_paper())
        .theta(-0.5)
        .migration(MigrationPolicy::single_hop())
        .diurnal(0.9, 2.0)
        .sample_interval_secs(600.0)
        .track_per_video(true)
        .shards(shards)
        .threads(threads)
        .offload_min_events(0)
        .seed(2024)
        .duration_hours(3.0)
        .warmup_hours(0.5)
        .build()
}

#[test]
fn parallel_matrix_flash_crowd() {
    assert!(
        flash_crowd(4, 8).parallel_eligible(),
        "flash crowd must exercise the epoch path, not the fallback"
    );
    assert_parallel_invariant("flash_crowd", flash_crowd);
}

/// The flight recorder's outcome-bearing sections (`windows`, `alerts`)
/// must be bit-identical across the whole shard × thread matrix. The
/// recording probe consumes state views, which forces the sequential
/// loop — the matrix pins exactly that: attaching it must not change
/// what it records, whatever execution the config *asked* for.
#[test]
fn timeseries_recording_is_thread_invariant() {
    let record = |shards: usize, threads: usize| {
        let cfg = flash_crowd(shards, threads);
        let mut probe = TimeSeriesProbe::new(&cfg, 600.0);
        Simulation::run_with_probes(&cfg, &mut [&mut probe]);
        probe.finish()
    };
    let base = record(1, 1);
    assert!(!base.windows.is_empty());
    for &shards in &SHARDS {
        for &threads in &THREADS {
            let rec = record(shards, threads);
            assert_eq!(
                rec.windows, base.windows,
                "window series diverged at shards = {shards}, threads = {threads}"
            );
            assert_eq!(
                rec.alerts, base.alerts,
                "alert stream diverged at shards = {shards}, threads = {threads}"
            );
        }
    }
}
