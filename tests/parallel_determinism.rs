//! Shard × thread invariance matrix.
//!
//! PR "parallel shard execution" claim: dispatching epoch bursts on a
//! worker-thread pool changes *nothing observable*. The epoch protocol
//! (`sct_simcore::parallel`) elects every shard below the plane's head,
//! runs their bursts concurrently against private queues, and merges
//! the logs in global `(time, seq)` order — so the RNG draw sequence,
//! the event stream, and every outcome float are bit-identical for any
//! shard count *and* any thread count. This test runs the four golden
//! scenarios (the same configs `golden_outcomes.rs` locks against
//! pre-refactor fixtures) plus a flash-crowd scenario across
//! `shards ∈ {1, 2, 4} × threads ∈ {1, 2, 8}`, asserting identical
//! [`SimOutcome`]s and span sets against the single-threaded
//! `shards = 1` baseline, and identical time-series `windows`/`alerts`
//! sections for the recording probe.
//!
//! Two of the golden scenarios (interactivity/waitlist, failures) are
//! *ineligible* for the parallel path and must silently fall back to
//! the classic loop at every thread count; they are in the matrix
//! precisely to pin that fallback. Combined with `golden_outcomes.rs`
//! (which pins `shards = 1` to pre-refactor snapshots), this
//! transitively pins every shard × thread combination to the
//! pre-sharding loop.

use sct_core::spans::capture;
use sct_core::{ExecRecorder, SpanProbe};
use semi_continuous_vod::prelude::*;

const SHARDS: [usize; 3] = [1, 2, 4];
const THREADS: [usize; 3] = [1, 2, 8];

/// Like [`capture`], but with the execution-plane recorder attached,
/// returning the recorder's trace alongside the outcome and span set.
/// The recorder is wall-clock-only, so the outcome and spans must match
/// a recorder-off run bit for bit — the matrix below compares every
/// recorder-on cell against a recorder-off baseline, which pins both
/// shard/thread invariance *and* recorder invisibility in one pass.
fn capture_with_exec(
    config: &SimConfig,
) -> (
    SimOutcome,
    sct_analysis::SpanSet,
    sct_analysis::exec::ExecTrace,
) {
    let mut probe = SpanProbe::new();
    let mut rec = ExecRecorder::new();
    let (outcome, profile, _, stats) =
        Simulation::run_instrumented(config, &mut [&mut probe], Some(&mut rec));
    let trace = rec.finish(config, &profile);
    // The trace must reconcile with the loop's own accounting on every
    // cell: one record per epoch, every event attributed exactly once.
    assert_eq!(trace.epochs_run(), stats.epochs_run);
    assert_eq!(trace.runs.len() as u64, stats.classic_runs);
    assert_eq!(
        trace.total_events(),
        outcome.events_processed,
        "exec trace lost or double-counted events"
    );
    (outcome, probe.finish(config.duration.as_secs()), trace)
}

/// Runs `build(shards, threads)` over the full matrix and asserts
/// outcomes and span sets match the single-threaded `shards = 1`
/// baseline bit-for-bit. The baseline runs recorder-off; every other
/// cell runs with the execution-plane recorder attached, so a single
/// pass pins shard invariance, thread invariance, and recorder
/// invisibility against each other.
fn assert_parallel_invariant(name: &str, build: impl Fn(usize, usize) -> SimConfig) {
    let (base_outcome, base_spans) = capture(&build(1, 1));
    assert!(
        !base_spans.spans.is_empty(),
        "{name}: scenario produced no spans — matrix would be vacuous"
    );
    for &shards in &SHARDS {
        for &threads in &THREADS {
            if (shards, threads) == (1, 1) {
                continue;
            }
            let (outcome, spans, _trace) = capture_with_exec(&build(shards, threads));
            assert_eq!(
                outcome, base_outcome,
                "{name}: SimOutcome diverged at shards = {shards}, threads = {threads}"
            );
            assert_eq!(
                spans, base_spans,
                "{name}: span set diverged at shards = {shards}, threads = {threads}"
            );
        }
    }
    // And the recorder-off cell at the far corner agrees too, closing
    // the recorder-on/off loop at a parallel cell (not just at (1,1)).
    let (off_outcome, off_spans) = capture(&build(4, 8));
    assert_eq!(
        off_outcome, base_outcome,
        "{name}: recorder-off (4,8) diverged"
    );
    assert_eq!(
        off_spans, base_spans,
        "{name}: recorder-off (4,8) spans diverged"
    );
}

#[test]
fn parallel_matrix_small_no_migration() {
    assert_parallel_invariant("small_no_migration", |shards, threads| {
        SimConfig::builder(SystemSpec::small_paper())
            .duration_hours(3.0)
            .warmup_hours(0.5)
            .sample_interval_secs(900.0)
            .track_per_video(true)
            .shards(shards)
            .threads(threads)
            .offload_min_events(0)
            .seed(1001)
            .build()
    });
}

#[test]
fn parallel_matrix_small_migration_interactive() {
    // Interactivity + waitlist make this config ineligible for epochs:
    // every cell must take the classic fallback and still agree.
    assert_parallel_invariant("small_migration_interactive", |shards, threads| {
        SimConfig::builder(SystemSpec::small_paper())
            .theta(0.0)
            .migration(MigrationPolicy::single_hop())
            .interactivity(0.3, 60.0, 600.0)
            .waitlist(120.0, 50)
            .shards(shards)
            .threads(threads)
            .seed(1002)
            .duration_hours(3.0)
            .warmup_hours(0.5)
            .build()
    });
}

#[test]
fn parallel_matrix_large_no_migration_replication() {
    // Dynamic replication is likewise ineligible: classic fallback.
    assert_parallel_invariant("large_no_migration_replication", |shards, threads| {
        SimConfig::builder(SystemSpec::large_paper())
            .theta(-0.5)
            .replication(ReplicationSpec::default_paper_scale())
            .shards(shards)
            .threads(threads)
            .seed(1003)
            .duration_hours(2.0)
            .warmup_hours(0.5)
            .build()
    });
}

#[test]
fn parallel_matrix_large_migration_failures() {
    // Failures route ServerDown/Up onto worker shards: ineligible,
    // classic fallback at every thread count.
    assert_parallel_invariant("large_migration_failures", |shards, threads| {
        SimConfig::builder(SystemSpec::large_paper())
            .migration(MigrationPolicy::single_hop())
            .failures(4.0, 0.5)
            .shards(shards)
            .threads(threads)
            .seed(1004)
            .duration_hours(2.0)
            .warmup_hours(0.5)
            .build()
    });
}

/// Flash crowd: heavily skewed demand under a strong diurnal swing, so
/// arrival bursts pile wakes onto the popular videos' holders — the
/// scenario where epoch bursts have the most simultaneous work and a
/// reordering bug would surface first. Eligible for the parallel path;
/// `offload_min_events(0)` forces real thread dispatch for every epoch.
fn flash_crowd(shards: usize, threads: usize) -> SimConfig {
    SimConfig::builder(SystemSpec::small_paper())
        .theta(-0.5)
        .migration(MigrationPolicy::single_hop())
        .diurnal(0.9, 2.0)
        .sample_interval_secs(600.0)
        .track_per_video(true)
        .shards(shards)
        .threads(threads)
        .offload_min_events(0)
        .seed(2024)
        .duration_hours(3.0)
        .warmup_hours(0.5)
        .build()
}

#[test]
fn parallel_matrix_flash_crowd() {
    assert!(
        flash_crowd(4, 8).parallel_eligible(),
        "flash crowd must exercise the epoch path, not the fallback"
    );
    assert_parallel_invariant("flash_crowd", flash_crowd);
}

/// The flight recorder's outcome-bearing sections (`windows`, `alerts`)
/// must be bit-identical across the whole shard × thread matrix. The
/// recording probe consumes state views, which forces the sequential
/// loop — the matrix pins exactly that: attaching it must not change
/// what it records, whatever execution the config *asked* for. The
/// baseline runs without the execution-plane recorder; every other cell
/// runs with it attached, so the recording is also pinned
/// exec-recorder-invariant.
#[test]
fn timeseries_recording_is_thread_invariant() {
    let record = |shards: usize, threads: usize, exec: bool| {
        let cfg = flash_crowd(shards, threads);
        let mut probe = TimeSeriesProbe::new(&cfg, 600.0);
        if exec {
            let mut rec = ExecRecorder::new();
            Simulation::run_instrumented(&cfg, &mut [&mut probe], Some(&mut rec));
        } else {
            Simulation::run_with_probes(&cfg, &mut [&mut probe]);
        }
        probe.finish()
    };
    let base = record(1, 1, false);
    assert!(!base.windows.is_empty());
    for &shards in &SHARDS {
        for &threads in &THREADS {
            let rec = record(shards, threads, true);
            assert_eq!(
                rec.windows, base.windows,
                "window series diverged at shards = {shards}, threads = {threads}"
            );
            assert_eq!(
                rec.alerts, base.alerts,
                "alert stream diverged at shards = {shards}, threads = {threads}"
            );
        }
    }
}

/// The exec trace of an eligible parallel run must attribute real work
/// to the epoch path, export a combined Perfetto/analyzer document that
/// round-trips, and yield an analyzer verdict whose barrier accounting
/// reconciles with the merged `LoopProfiler` barrier phase.
#[test]
fn exec_trace_round_trips_and_reconciles_with_the_profiler() {
    let cfg = flash_crowd(4, 2);
    let (_, _, trace) = capture_with_exec(&cfg);
    assert!(trace.epochs_run() > 0, "eligible config never ran an epoch");
    assert!(
        trace.bursts_offloaded() > 0,
        "offload_min_events(0) never offloaded"
    );

    let text = trace.to_json();
    let back = sct_analysis::exec::ExecTrace::from_json(&text).unwrap();
    assert_eq!(back, trace, "combined JSON export did not round-trip");

    let report = trace.analyze();
    assert!(!report.verdict.is_empty());
    assert!(report.serialization_fraction > 0.0 && report.serialization_fraction <= 1.0);
    assert!(report.imbalance_ratio >= 1.0);
    assert!(
        report.profiler_barrier_secs > 0.0,
        "merged barrier phase missing"
    );
    // The recorder's barrier windows bracket the same coordinator work
    // the LoopProfiler charges to its barrier phase; clock-read overhead
    // sits between the two reads, so recorder >= profiler, within 3x.
    assert!(
        report.exec_barrier_secs >= report.profiler_barrier_secs * 0.5
            && report.exec_barrier_secs <= report.profiler_barrier_secs * 3.0,
        "barrier accounting out of family: exec {} s vs profiler {} s",
        report.exec_barrier_secs,
        report.profiler_barrier_secs
    );
}
