//! Paper-fidelity soak tests, `#[ignore]`d by default (minutes each).
//! Run with:
//!
//! ```text
//! cargo test --release --test paper_fidelity_soak -- --ignored
//! ```

use sct_core::config::SimConfig;
use sct_core::policies::Policy;
use sct_core::simulation::Simulation;
use sct_workload::SystemSpec;

/// One full paper-protocol trial (1000 simulated hours) of the Small
/// system under P4, with invariant checking enabled throughout —
/// ~1.8 million events with every engine invariant asserted.
#[test]
#[ignore = "minutes-long soak; run with -- --ignored"]
fn thousand_hour_small_system_trial() {
    let cfg = SimConfig::builder(SystemSpec::small_paper())
        .policy(Policy::P4)
        .theta(0.271)
        .duration_hours(1000.0)
        .warmup_hours(5.0)
        .check_invariants(true)
        .seed(2001)
        .build();
    let out = Simulation::run(&cfg);
    assert!(out.stats.arrivals > 450_000, "{}", out.stats.arrivals);
    assert!(out.utilization > 0.95, "{}", out.utilization);
    assert!(out.utilization <= 1.0 + 1e-9);
    out.stats.check();
}

/// A 1000-hour Large-system trial with every extension active at once:
/// failures, pauses, replication, migration, heterogeneity.
#[test]
#[ignore = "minutes-long soak; run with -- --ignored"]
fn kitchen_sink_large_system_trial() {
    use sct_admission::{MigrationPolicy, ReplicationSpec};
    use sct_workload::HeterogeneityKind;
    let cfg = SimConfig::builder(SystemSpec::large_paper())
        .theta(-0.25)
        .migration(MigrationPolicy {
            handoff_latency_secs: 0.0,
            ..MigrationPolicy::single_hop()
        })
        .staging_fraction(0.2)
        .heterogeneity(HeterogeneityKind::Bandwidth, 0.4)
        .failures(50.0, 0.5)
        .interactivity(0.3, 60.0, 600.0)
        .replication(ReplicationSpec::default_paper_scale())
        .duration_hours(1000.0)
        .warmup_hours(5.0)
        .check_invariants(true)
        .seed(4242)
        .build();
    let out = Simulation::run(&cfg);
    assert!(out.utilization > 0.5 && out.utilization <= 1.0 + 1e-9);
    assert!(out.server_failures > 0);
    assert!(out.pauses_applied > 0);
    assert!(out.replication.replicas_created > 0);
    assert!(out.stats.accepted_via_migration > 0);
    out.stats.check();
}
