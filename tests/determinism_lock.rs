//! Determinism locks: golden values for fixed configs.
//!
//! These tests pin *exact* outputs of fixed-seed runs. They exist to catch
//! unintended behavioural drift — any change to the RNG, the event order,
//! the allocator, or admission logic will trip them. If you change the
//! simulator's behaviour **intentionally**, update the constants and say
//! so in the commit.

use sct_core::config::SimConfig;
use sct_core::policies::Policy;
use sct_core::simulation::Simulation;
use sct_simcore::Rng;
use sct_workload::SystemSpec;

/// The raw RNG stream is pinned by the xoshiro256** specification.
#[test]
fn rng_stream_is_pinned() {
    let mut r = Rng::new(0);
    let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
    // Derived from splitmix64-seeded xoshiro256**; stable across platforms.
    let again: Vec<u64> = {
        let mut r2 = Rng::new(0);
        (0..4).map(|_| r2.next_u64()).collect()
    };
    assert_eq!(first, again);
    // Cross-check one value against an independently computed constant
    // (generated once at lock time; see module docs).
    assert_eq!(first, golden_rng_values());
}

fn golden_rng_values() -> Vec<u64> {
    // Computed by this implementation on 2026-07-04; the xoshiro256**
    // algorithm and SplitMix64 seeding are fixed by their reference
    // specifications, so these values are portable.
    let mut s: u64 = 0;
    let mut sm = || {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut st = [sm(), sm(), sm(), sm()];
    let mut next = move || {
        let result = st[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = st[1] << 17;
        st[2] ^= st[0];
        st[3] ^= st[1];
        st[1] ^= st[2];
        st[0] ^= st[3];
        st[2] ^= t;
        st[3] = st[3].rotate_left(45);
        result
    };
    (0..4).map(|_| next()).collect()
}

/// A fixed tiny-system trial produces bit-identical headline numbers.
#[test]
fn tiny_system_outcome_is_locked() {
    let cfg = SimConfig::builder(SystemSpec::tiny_test())
        .policy(Policy::P4)
        .theta(0.271)
        .duration_hours(4.0)
        .warmup_hours(0.5)
        .seed(0x10CC)
        .build();
    let a = Simulation::run(&cfg);
    let b = Simulation::run(&cfg);
    // Bit-exact repeatability within this build.
    assert_eq!(a, b);
    // Cross-run invariant content checks (robust to intentional metric
    // additions, sensitive to behavioural changes).
    assert_eq!(a.stats.arrivals, a.stats.accepted() + a.stats.rejected);
    let total_util: f64 = a.per_server_utilization.iter().sum::<f64>();
    assert!(
        (total_util / 3.0 - a.utilization).abs() < 1e-12,
        "homogeneous servers: mean per-server utilization equals the total"
    );
}

/// Identical configs built through different code paths (builder vs JSON
/// round-trip) must be indistinguishable to the simulator.
#[test]
fn config_equivalence_lock() {
    let built = SimConfig::builder(SystemSpec::small_paper())
        .policy(Policy::P2)
        .theta(-0.5)
        .duration_hours(3.0)
        .seed(9)
        .build();
    let via_json: SimConfig =
        serde_json::from_str(&serde_json::to_string(&built).unwrap()).unwrap();
    assert_eq!(Simulation::run(&built), Simulation::run(&via_json));
}
