//! # semi-continuous-vod
//!
//! A reproduction of *"Semi-Continuous Transmission for Cluster-Based
//! Video Servers"* (Irani & Venkatasubramanian, IEEE CLUSTER 2001): a
//! cluster video-on-demand server simulator featuring
//!
//! * **semi-continuous transmission** — workahead streaming into client
//!   staging buffers, scheduled by the paper's Earliest-Finishing-Time-First
//!   (EFTF) allocator;
//! * **dynamic request migration (DRM)** — admission control that frees a
//!   slot by live-migrating an active stream to another replica holder;
//! * **placement strategies** — even, predictive, and partial-predictive
//!   replica allocation;
//! * the paper's full experiment suite (Figures 3–7 plus the tech-report
//!   extensions: SVBR, heterogeneity, partial-predictive, staging sweep).
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names. Start with [`prelude`], or jump straight to
//! [`core::Simulation`](sct_core::simulation::Simulation).
//!
//! ## Quick example
//!
//! ```
//! use semi_continuous_vod::prelude::*;
//!
//! // The paper's Small system at Zipf θ = 0.271, policy P4
//! // (even placement + migration + 20 % staging), one short trial.
//! let spec = SystemSpec::small_paper();
//! let config = SimConfig::builder(spec)
//!     .theta(0.271)
//!     .policy(Policy::P4)
//!     .duration_hours(6.0)
//!     .seed(7)
//!     .build();
//! let outcome = Simulation::run(&config);
//! assert!(outcome.utilization > 0.5 && outcome.utilization <= 1.0);
//! ```

pub use sct_admission as admission;
pub use sct_analysis as analysis;
pub use sct_cluster as cluster;
pub use sct_core as core;
pub use sct_media as media;
pub use sct_simcore as simcore;
pub use sct_transmission as transmission;
pub use sct_workload as workload;

/// Convenient re-exports of the types most programs need.
pub mod prelude {
    pub use sct_admission::{
        AssignmentPolicy, CopySource, MigrationPolicy, ReplicationSpec, VictimSelection,
        WaitlistSpec,
    };
    pub use sct_analysis::report::Table;
    pub use sct_analysis::slo::{SloAlert, SloEvaluator, SloPolicy, SloRule};
    pub use sct_analysis::snapshot::MetricsSnapshot;
    pub use sct_analysis::timeseries::{
        render_dashboard, RecordingDiff, TimeSeriesRecording, WindowRow,
    };
    pub use sct_cluster::placement::PlacementStrategy;
    pub use sct_core::config::{FailureSpec, PauseSpec, SimConfig, SimConfigBuilder, StagingSpec};
    pub use sct_core::events::{
        AdmitPath, CrossShardCounter, CrossShardEdge, JsonlTraceProbe, MetricsProbe, Probe,
        RunSummary, SimEvent,
    };
    pub use sct_core::experiments;
    pub use sct_core::metrics::{
        Histogram, MetricsRegistry, StateView, TelemetryProbe, TimeWeightedGauge,
    };
    pub use sct_core::policies::Policy;
    pub use sct_core::profile::{LoopProfile, LoopProfiler};
    pub use sct_core::runner::{run_trials, TrialPlan};
    pub use sct_core::simulation::{SimOutcome, Simulation};
    pub use sct_core::spans::SpanProbe;
    pub use sct_core::timeseries::TimeSeriesProbe;
    pub use sct_media::{Catalog, ClientProfile, Video, VideoId};
    pub use sct_simcore::{Rng, SimTime};
    pub use sct_transmission::SchedulerKind;
    pub use sct_workload::scenario::SystemSpec;
}
