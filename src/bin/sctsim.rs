//! `sctsim` — command-line front end for the cluster-VoD simulator.
//!
//! ```text
//! sctsim run --system small --policy P4 --theta 0.271 --hours 24 --trials 3
//! sctsim run --config my_config.json --out outcome.json
//! sctsim scenario --system large              # dump a SimConfig as JSON
//! sctsim erlang --svbr 33                     # analytic single-server numbers
//! sctsim trace --system small --hours 1 --theta 0.0 > trace.json
//! ```
//!
//! All subcommands are deterministic given `--seed`.

use semi_continuous_vod::analysis::benchdiff;
use semi_continuous_vod::analysis::erlang::{erlang_b, expected_utilization_vs_svbr};
use semi_continuous_vod::analysis::exec::ExecTrace;
use semi_continuous_vod::analysis::slo::SloPolicy;
use semi_continuous_vod::analysis::snapshot::LoopProfilesSnapshot;
use semi_continuous_vod::analysis::timeseries::{diff, render_dashboard, TimeSeriesRecording};
use semi_continuous_vod::analysis::{MetricsSnapshot, SpanSet};
use semi_continuous_vod::core::config::SimConfig;
use semi_continuous_vod::core::policies::Policy;
use semi_continuous_vod::core::runner::{run_trials, utilization_summary, TrialPlan};
use semi_continuous_vod::core::simulation::Simulation;
use semi_continuous_vod::core::{
    ExecRecorder, JsonlTraceProbe, LoopProfile, MetricsRegistry, Probe, SpanProbe, TelemetryProbe,
    TimeSeriesProbe,
};
use semi_continuous_vod::simcore::{Rng, SimTime, ZipfLike};
use semi_continuous_vod::workload::{calibrated_rate, SystemSpec, Trace};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  sctsim run [--config FILE | --system small|large|tiny|huge] [--policy P1..P8]\n\
         \x20          [--theta T] [--hours H] [--warmup H] [--trials N] [--seed S] [--out FILE]\n\
         \x20          [--shards N]  (partition the event loop; outcomes are shard-invariant)\n\
         \x20          [--threads N]  (run shard bursts on N worker threads; outcomes are\n\
         \x20                          thread-invariant — wall-clock only)\n\
         \x20          [--trace FILE]  (export a JSONL event trace; single trial only)\n\
         \x20          [--metrics FILE]  (export a telemetry snapshot, merged across trials)\n\
         \x20          [--spans FILE]  (export request-lifecycle spans; single trial only)\n\
         \x20          [--profile]  (print the event loop's wall-clock phase profile,\n\
         \x20                        per shard when --shards > 1)\n\
         \x20          [--timeseries FILE]  (export a windowed time-series recording,\n\
         \x20                                merged across trials)\n\
         \x20          [--window SECS]  (time-series window width, default 900)\n\
         \x20          [--slo FILE]  (SLO rule policy JSON for the recording's alerts)\n\
         \x20          [--exec-trace FILE]  (export a wall-clock execution-plane trace,\n\
         \x20                                Perfetto-loadable; single trial only)\n\
         \x20 sctsim exec FILE  (analyse an execution-plane trace: Amdahl decomposition,\n\
         \x20                    imbalance, stall attribution, bottleneck verdict)\n\
         \x20 sctsim bench-diff OLD NEW [--gate PCT]  (compare two bench result files and\n\
         \x20                                          name the worst-moved cell)\n\
         \x20 sctsim report FILE [--svg FILE]  (render a metrics snapshot as markdown + SVG)\n\
         \x20 sctsim spans FILE [--critical-path] [--perfetto OUT]  (analyse a span export)\n\
         \x20 sctsim watch FILE [--once] [--interval-secs S]  (live terminal dashboard\n\
         \x20                                                  over a recording file)\n\
         \x20 sctsim diff A B [--tolerance T]  (align two recordings window-by-window\n\
         \x20                                   and localize the first divergence)\n\
         \x20 sctsim scenario --system small|large|tiny|huge [--policy P..] [--theta T]\n\
         \x20 sctsim erlang --svbr K [--view-rate MBPS]\n\
         \x20 sctsim trace --system small|large|tiny|huge [--theta T] [--hours H] [--seed S]"
    );
    exit(2)
}

struct Args {
    map: Vec<(String, String)>,
}

/// Flags that take no value.
const BOOL_FLAGS: [&str; 3] = ["profile", "critical-path", "once"];

impl Args {
    fn parse(args: &[String]) -> Args {
        let mut map = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if BOOL_FLAGS.contains(&key) {
                    map.push((key.to_string(), "true".to_string()));
                    continue;
                }
                let val = it.next().unwrap_or_else(|| {
                    eprintln!("missing value for --{key}");
                    usage()
                });
                map.push((key.to_string(), val.clone()));
            } else {
                eprintln!("unexpected argument {a}");
                usage();
            }
        }
        Args { map }
    }

    fn has(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.map
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--{key} expects a number, got {v}");
                usage()
            })
        })
    }
}

fn system_by_name(name: &str) -> SystemSpec {
    match name {
        "small" => SystemSpec::small_paper(),
        "large" => SystemSpec::large_paper(),
        "tiny" => SystemSpec::tiny_test(),
        "huge" => SystemSpec::huge(),
        other => {
            eprintln!("unknown system {other} (expected small|large|tiny|huge)");
            usage()
        }
    }
}

fn policy_by_name(name: &str) -> Policy {
    Policy::ALL
        .into_iter()
        .find(|p| p.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!("unknown policy {name} (expected P1..P8)");
            usage()
        })
}

fn build_config(args: &Args) -> SimConfig {
    if let Some(path) = args.get("config") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        });
        let mut config: SimConfig = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            exit(1)
        });
        // --shards/--threads compose with --config: loop-execution
        // knobs, not part of the experiment a config file describes.
        if let Some(s) = args.get_f64("shards") {
            config.shards = (s as usize).max(1);
        }
        if let Some(t) = args.get_f64("threads") {
            config.threads = (t as usize).max(1);
        }
        return config;
    }
    let system = system_by_name(args.get("system").unwrap_or("small"));
    let mut b = SimConfig::builder(system);
    if let Some(s) = args.get_f64("shards") {
        b = b.shards((s as usize).max(1));
    }
    if let Some(t) = args.get_f64("threads") {
        b = b.threads((t as usize).max(1));
    }
    if let Some(p) = args.get("policy") {
        b = b.policy(policy_by_name(p));
    }
    if let Some(t) = args.get_f64("theta") {
        b = b.theta(t);
    }
    if let Some(h) = args.get_f64("hours") {
        b = b.duration_hours(h);
        // Keep the default warm-up sensible for short runs.
        if args.get("warmup").is_none() {
            b = b.warmup_hours((h * 0.1).min(1.0));
        }
    }
    if let Some(w) = args.get_f64("warmup") {
        b = b.warmup_hours(w);
    }
    if let Some(s) = args.get_f64("seed") {
        b = b.seed(s as u64);
    }
    b.build()
}

/// Why `--threads > 1` fell back to the classic single-threaded
/// protocol (mirrors `SimConfig::parallel_eligible` plus the run-time
/// probe gate).
fn classic_fallback_reason(cfg: &SimConfig, state_probe: bool) -> String {
    let mut reasons = Vec::new();
    if cfg.shards < 2 {
        reasons.push("the loop has a single shard (use --shards)".to_string());
    }
    if cfg.failures.is_some() {
        reasons.push("failures are configured".to_string());
    }
    if cfg.interactivity.is_some() {
        reasons.push("interactivity is configured".to_string());
    }
    if cfg.waitlist.is_some() {
        reasons.push("a waitlist is configured".to_string());
    }
    if cfg.replication.is_some() {
        reasons.push("replication is configured".to_string());
    }
    if state_probe {
        reasons.push("an attached probe consumes state views (--metrics/--timeseries)".to_string());
    }
    if reasons.is_empty() {
        // Eligible but no epoch ever elected: every run was a plane run.
        "no worker shard's head ever fell below the plane's".to_string()
    } else {
        reasons.join("; ")
    }
}

fn cmd_run(args: &Args) {
    let config = build_config(args);
    let trials = args.get_f64("trials").unwrap_or(1.0) as u32;
    let seed = args.get_f64("seed").unwrap_or(0.0) as u64;
    let trace_path = args.get("trace");
    let metrics_path = args.get("metrics");
    let spans_path = args.get("spans");
    let timeseries_path = args.get("timeseries");
    let exec_path = args.get("exec-trace");
    let profile = args.has("profile");
    // A trace or span export narrates exactly one trial; silently
    // dropping the other trials would misrepresent what ran.
    if trials > 1 {
        if trace_path.is_some() {
            eprintln!("--trace exports a single trial; it conflicts with --trials {trials}");
            exit(2)
        }
        if spans_path.is_some() {
            eprintln!("--spans exports a single trial; it conflicts with --trials {trials}");
            exit(2)
        }
        if exec_path.is_some() {
            eprintln!("--exec-trace exports a single trial; it conflicts with --trials {trials}");
            exit(2)
        }
    }
    let window_secs = args.get_f64("window").unwrap_or(900.0);
    if timeseries_path.is_some() && !(window_secs > 0.0 && window_secs.is_finite()) {
        eprintln!("--window expects a positive number of seconds, got {window_secs}");
        exit(2)
    }
    // `--window`/`--slo` only shape a time-series recording.
    if timeseries_path.is_none() && (args.has("window") || args.has("slo")) {
        eprintln!("--window and --slo require --timeseries");
        exit(2)
    }
    let slo_policy = match args.get("slo") {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                exit(1)
            });
            SloPolicy::from_json(&text).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                exit(1)
            })
        }
        None => SloPolicy::default_policy(),
    };
    let outcomes = if trace_path.is_some()
        || metrics_path.is_some()
        || spans_path.is_some()
        || timeseries_path.is_some()
        || exec_path.is_some()
        || profile
    {
        // Probes attached: run the plan's trials sequentially so each trial
        // gets its own telemetry probe, then merge the registries (the
        // merge is exact — see sct-core::metrics). Probes cannot perturb
        // outcomes, so this matches `run_trials` on the same plan bit for
        // bit.
        let n = trials.max(1);
        let plan = TrialPlan::new(n, seed);
        let mut trace_probe = trace_path.map(|path| {
            JsonlTraceProbe::create(path).unwrap_or_else(|e| {
                eprintln!("cannot create {path}: {e}");
                exit(1)
            })
        });
        let mut registry: Option<MetricsRegistry> = None;
        let mut recording: Option<TimeSeriesRecording> = None;
        // Per-trial loop profiles, kept so a `--metrics` snapshot can
        // carry the merged wall-clock decomposition (and each shard's,
        // when sharded).
        let mut merged_profiles: Vec<LoopProfile> = Vec::new();
        let mut shard_profiles: Vec<Vec<LoopProfile>> = Vec::new();
        let mut outs = Vec::with_capacity(n as usize);
        for i in 0..n {
            let mut cfg = config.clone();
            cfg.seed = plan.seed(i);
            let mut telemetry = metrics_path.map(|_| TelemetryProbe::new(&cfg));
            let mut span_probe = spans_path.map(|_| SpanProbe::new());
            let mut ts_probe = timeseries_path
                .map(|_| TimeSeriesProbe::with_policy(&cfg, window_secs, slo_policy.clone()));
            let mut hub: Vec<&mut dyn Probe> = Vec::new();
            if let Some(t) = telemetry.as_mut() {
                hub.push(t);
            }
            if let Some(t) = trace_probe.as_mut() {
                hub.push(t);
            }
            if let Some(s) = span_probe.as_mut() {
                hub.push(s);
            }
            if let Some(t) = ts_probe.as_mut() {
                hub.push(t);
            }
            let state_probe_attached = hub.iter().any(|p| p.uses_state());
            let mut exec_rec = exec_path.map(|_| ExecRecorder::new());
            let (outcome, loop_profile, per_shard, exec_stats) =
                Simulation::run_instrumented(&cfg, &mut hub, exec_rec.as_mut());
            merged_profiles.push(loop_profile);
            if per_shard.len() > 1 {
                if shard_profiles.is_empty() {
                    shard_profiles = vec![Vec::with_capacity(n as usize); per_shard.len()];
                }
                for (s, p) in per_shard.iter().enumerate() {
                    shard_profiles[s].push(*p);
                }
            }
            if profile {
                eprint!("trial {i}: {}", loop_profile.to_text());
                // With a sharded loop the merged table above hides
                // imbalance; print each shard's own decomposition
                // (the barrier row is charged to the elected shard).
                if per_shard.len() > 1 {
                    for (s, p) in per_shard.iter().enumerate() {
                        eprint!("trial {i} shard {s}: {}", p.to_text());
                    }
                }
                // With worker threads requested, say what the execution
                // plane actually did — the classic fallback is silent
                // otherwise.
                if cfg.threads > 1 {
                    eprintln!("trial {i}: {}", exec_stats.to_text());
                    if exec_stats.epochs_run == 0 {
                        eprintln!(
                            "trial {i}: parallel epochs never engaged — {}",
                            classic_fallback_reason(&cfg, state_probe_attached)
                        );
                    }
                }
            }
            outs.push(outcome);
            if let Some(t) = telemetry {
                let trial_registry = t.finish();
                match registry.as_mut() {
                    Some(r) => r.merge(trial_registry),
                    None => registry = Some(trial_registry),
                }
            }
            if let Some(t) = ts_probe {
                let mut rec = t.finish();
                rec.set_trial(i);
                match recording.as_mut() {
                    Some(r) => r.merge(&rec).unwrap_or_else(|e| {
                        eprintln!("cannot merge trial {i} recording: {e}");
                        exit(1)
                    }),
                    None => recording = Some(rec),
                }
            }
            if let (Some(path), Some(probe)) = (spans_path, span_probe) {
                let set = probe.finish(cfg.duration.as_secs());
                std::fs::write(path, set.to_json() + "\n").unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    exit(1)
                });
                eprintln!(
                    "wrote {} spans / {} causal edges to {path}",
                    set.spans.len(),
                    set.edges.len()
                );
            }
            if let (Some(path), Some(rec)) = (exec_path, exec_rec) {
                let trace = rec.finish(&cfg, &loop_profile);
                std::fs::write(path, trace.to_json()).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    exit(1)
                });
                eprintln!(
                    "wrote execution-plane trace ({} epochs, {} classic runs) to {path} \
                     (open in ui.perfetto.dev, or run `sctsim exec {path}`)",
                    trace.epochs_run(),
                    trace.runs.len()
                );
            }
        }
        if let (Some(path), Some(probe)) = (trace_path, trace_probe) {
            let lines = probe.finish().unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1)
            });
            eprintln!("traced {lines} events to {path}");
        }
        if let (Some(path), Some(registry)) = (metrics_path, registry) {
            let mut snapshot = registry.snapshot();
            // Carry the loop's own wall-clock decomposition alongside
            // the simulated metrics: phase seconds sum across trials
            // (and across shards within the merged row); wall time
            // keeps `LoopProfile::merge`'s max-across-inputs meaning.
            snapshot.profile = Some(LoopProfilesSnapshot {
                merged: LoopProfile::merge(&merged_profiles).snapshot(),
                per_shard: shard_profiles
                    .iter()
                    .map(|trials| LoopProfile::merge(trials).snapshot())
                    .collect(),
            });
            std::fs::write(path, snapshot.to_json() + "\n").unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1)
            });
            eprintln!(
                "wrote metrics snapshot ({} trial{}) to {path}",
                snapshot.trials,
                if snapshot.trials == 1 { "" } else { "s" }
            );
        }
        if let (Some(path), Some(recording)) = (timeseries_path, recording) {
            std::fs::write(path, recording.to_json() + "\n").unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1)
            });
            eprintln!(
                "wrote time-series recording ({} windows x {}s, {} trial{}, {} alert{}) to {path}",
                recording.windows.len(),
                recording.window_secs,
                recording.trials,
                if recording.trials == 1 { "" } else { "s" },
                recording.alerts.len(),
                if recording.alerts.len() == 1 { "" } else { "s" },
            );
        }
        outs
    } else {
        run_trials(&config, TrialPlan::new(trials.max(1), seed))
    };
    let summary = utilization_summary(&outcomes);
    eprintln!(
        "system={} theta={} trials={} hours={:.1}",
        config.system.name,
        config.theta,
        outcomes.len(),
        config.duration.as_hours()
    );
    eprintln!(
        "utilization = {:.4} ± {:.4}   acceptance = {:.4}   migrations = {}",
        summary.mean,
        summary.ci95,
        outcomes.iter().map(|o| o.acceptance_ratio()).sum::<f64>() / outcomes.len() as f64,
        outcomes
            .iter()
            .map(|o| o.stats.accepted_via_migration)
            .sum::<u64>(),
    );
    let json = serde_json::to_string_pretty(&outcomes).expect("outcomes serialise");
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1)
            });
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

fn cmd_report(file: &str, args: &Args) {
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("cannot read {file}: {e}");
        exit(1)
    });
    let snapshot = MetricsSnapshot::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{file}: {e}");
        exit(1)
    });
    print!("{}", snapshot.to_markdown());
    let svg_path = match args.get("svg") {
        Some(p) => p.to_string(),
        None => {
            // m.json → m.svg (or append .svg when there is no extension).
            let mut p = std::path::PathBuf::from(file);
            p.set_extension("svg");
            p.to_string_lossy().into_owned()
        }
    };
    match snapshot.to_svg() {
        Ok(svg) => {
            std::fs::write(&svg_path, svg).unwrap_or_else(|e| {
                eprintln!("cannot write {svg_path}: {e}");
                exit(1)
            });
            eprintln!("wrote dashboard to {svg_path}");
        }
        // A snapshot without per-server gauges still renders as markdown.
        Err(e) => eprintln!("skipping SVG dashboard: {e}"),
    }
}

fn cmd_spans(file: &str, args: &Args) {
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("cannot read {file}: {e}");
        exit(1)
    });
    let set = SpanSet::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{file}: {e}");
        exit(1)
    });
    print!("{}", set.summary_markdown());
    if args.has("critical-path") {
        println!();
        print!("{}", set.critical_path_report(10));
    }
    if let Some(path) = args.get("perfetto") {
        std::fs::write(path, set.to_perfetto()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1)
        });
        eprintln!("wrote Perfetto trace to {path} (open in ui.perfetto.dev)");
    }
}

fn read_recording(file: &str) -> TimeSeriesRecording {
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("cannot read {file}: {e}");
        exit(1)
    });
    TimeSeriesRecording::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{file}: {e}");
        exit(1)
    })
}

fn cmd_watch(file: &str, args: &Args) {
    let cols = 72;
    if args.has("once") {
        print!("{}", render_dashboard(&read_recording(file), cols));
        return;
    }
    let interval = args.get_f64("interval-secs").unwrap_or(2.0);
    if !(interval > 0.0 && interval.is_finite()) {
        eprintln!("--interval-secs expects a positive number, got {interval}");
        exit(2)
    }
    loop {
        // Re-read every tick: a concurrent `sctsim run --timeseries`
        // rewrites the file when it finishes. A missing file or
        // partially-written JSON keeps the previous frame on screen and
        // notes the retry — never a hard exit, since the writer may be
        // mid-flush.
        let frame = match std::fs::read_to_string(file) {
            Ok(text) => match TimeSeriesRecording::from_json(&text) {
                Ok(rec) => Some(rec),
                Err(e) => {
                    eprintln!("watch: {file} unreadable mid-write ({e}); retrying in {interval}s");
                    None
                }
            },
            Err(e) => {
                eprintln!("watch: cannot read {file} ({e}); retrying in {interval}s");
                None
            }
        };
        if let Some(rec) = frame {
            // ANSI clear + home, then the dashboard.
            print!("\x1b[2J\x1b[H{}", render_dashboard(&rec, cols));
            use std::io::Write;
            let _ = std::io::stdout().flush();
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
    }
}

fn cmd_exec(file: &str) {
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("cannot read {file}: {e}");
        exit(1)
    });
    let trace = ExecTrace::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{file}: {e}");
        exit(1)
    });
    print!("{}", trace.analyze().to_text());
}

fn cmd_bench_diff(file_old: &str, file_new: &str, args: &Args) {
    let read = |file: &str| {
        std::fs::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("cannot read {file}: {e}");
            exit(1)
        })
    };
    let report = benchdiff::diff(&read(file_old), &read(file_new)).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1)
    });
    print!("{}", report.to_text());
    if let Some(pct) = args.get_f64("gate") {
        if !(pct >= 0.0 && pct.is_finite()) {
            eprintln!("--gate expects a non-negative percentage, got {pct}");
            exit(2)
        }
        let violations = report.gate(pct);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!(
                    "gate: {} regressed {:.2}% (> {pct}%): {:.4} -> {:.4}",
                    v.path, v.regression_pct, v.old, v.new
                );
            }
            exit(1)
        }
        eprintln!("gate: no cell regressed more than {pct}%");
    }
}

fn cmd_diff(file_a: &str, file_b: &str, args: &Args) {
    let tol = args.get_f64("tolerance").unwrap_or(1e-9);
    let a = read_recording(file_a);
    let b = read_recording(file_b);
    match diff(&a, &b, tol) {
        Ok(report) => print!("{}", report.to_text()),
        Err(e) => {
            eprintln!("cannot diff {file_a} vs {file_b}: {e}");
            exit(1)
        }
    }
}

fn cmd_scenario(args: &Args) {
    let config = build_config(args);
    println!(
        "{}",
        serde_json::to_string_pretty(&config).expect("config serialises")
    );
}

fn cmd_erlang(args: &Args) {
    let k = args.get_f64("svbr").unwrap_or_else(|| {
        eprintln!("--svbr is required");
        usage()
    }) as usize;
    let view = args.get_f64("view-rate").unwrap_or(3.0);
    let bw = k as f64 * view;
    println!("SVBR                      {k}");
    println!("server bandwidth          {bw} Mb/s at view rate {view} Mb/s");
    println!("blocking B(k,k)           {:.6}", erlang_b(k, k as f64));
    println!(
        "expected utilization      {:.6}",
        expected_utilization_vs_svbr(bw, view)
    );
}

fn cmd_trace(args: &Args) {
    let system = system_by_name(args.get("system").unwrap_or("small"));
    let theta = args.get_f64("theta").unwrap_or(0.271);
    let hours = args.get_f64("hours").unwrap_or(1.0);
    let seed = args.get_f64("seed").unwrap_or(0.0) as u64;
    let mut rng = Rng::new(seed).fork(1);
    let catalog = system.catalog(&mut rng);
    let pops = ZipfLike::new(catalog.len(), theta);
    let rate = calibrated_rate(system.total_bandwidth_mbps(), &catalog, pops.probs());
    let trace = Trace::generate(rate, &pops, SimTime::from_hours(hours), &Rng::new(seed));
    println!("{}", trace.to_json());
    eprintln!("{} requests over {hours} h (rate {rate:.4}/s)", trace.len());
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        usage()
    };
    // `report` and `spans` take a positional file before their flags.
    if cmd == "report" {
        let Some((file, flags)) = rest.split_first() else {
            eprintln!("report needs a snapshot file");
            usage()
        };
        cmd_report(file, &Args::parse(flags));
        return;
    }
    if cmd == "spans" {
        let Some((file, flags)) = rest.split_first() else {
            eprintln!("spans needs a span-set file");
            usage()
        };
        cmd_spans(file, &Args::parse(flags));
        return;
    }
    if cmd == "watch" {
        let Some((file, flags)) = rest.split_first() else {
            eprintln!("watch needs a recording file");
            usage()
        };
        cmd_watch(file, &Args::parse(flags));
        return;
    }
    if cmd == "diff" {
        if rest.len() < 2 {
            eprintln!("diff needs two recording files");
            usage()
        }
        cmd_diff(&rest[0], &rest[1], &Args::parse(&rest[2..]));
        return;
    }
    if cmd == "exec" {
        let Some((file, _flags)) = rest.split_first() else {
            eprintln!("exec needs an execution-plane trace file");
            usage()
        };
        cmd_exec(file);
        return;
    }
    if cmd == "bench-diff" {
        if rest.len() < 2 {
            eprintln!("bench-diff needs two bench result files");
            usage()
        }
        cmd_bench_diff(&rest[0], &rest[1], &Args::parse(&rest[2..]));
        return;
    }
    let args = Args::parse(rest);
    match cmd.as_str() {
        "run" => cmd_run(&args),
        "scenario" => cmd_scenario(&args),
        "erlang" => cmd_erlang(&args),
        "trace" => cmd_trace(&args),
        _ => usage(),
    }
}
