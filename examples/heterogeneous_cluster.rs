//! Mixed-hardware clusters (§4.6): what does resource imbalance cost, and
//! does semi-continuous transmission absorb it?
//!
//! Builds 10-server clusters with the Large system's total capacity but
//! increasing bandwidth (or storage) spread, and measures utilization with
//! the full semi-continuous stack (EFTF + staging + DRM).
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```

use semi_continuous_vod::admission::MigrationPolicy;
use semi_continuous_vod::prelude::*;
use semi_continuous_vod::workload::HeterogeneityKind;

fn run_point(spec: &SystemSpec, het: Option<(HeterogeneityKind, f64)>) -> (f64, f64) {
    let mut builder = SimConfig::builder(spec.clone())
        .theta(0.271)
        .staging_fraction(0.2)
        .migration(MigrationPolicy {
            handoff_latency_secs: 0.0,
            ..MigrationPolicy::single_hop()
        })
        .duration_hours(24.0)
        .warmup_hours(1.0);
    if let Some((kind, spread)) = het {
        builder = builder.heterogeneity(kind, spread);
    }
    let outcomes = run_trials(&builder.build(), TrialPlan::new(3, 23));
    let util = semi_continuous_vod::core::runner::utilization_summary(&outcomes).mean;
    // Imbalance indicator: spread of per-server utilizations in the last trial.
    let per = &outcomes[0].per_server_utilization;
    let min = per.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per.iter().cloned().fold(0.0, f64::max);
    (util, max - min)
}

fn main() {
    let spec = SystemSpec::large_paper().with_servers(10);
    println!(
        "10-server cluster, totals fixed at {} Mb/s / {} GB; θ = 0.271; EFTF + 20% staging + DRM\n",
        spec.total_bandwidth_mbps(),
        spec.server_disk_gb * 10.0
    );
    println!(
        "{:>10}  {:>22}  {:>22}",
        "spread", "bandwidth-heterogeneous", "storage-heterogeneous"
    );
    println!(
        "{:>10}  {:>11} {:>10}  {:>11} {:>10}",
        "", "utilization", "imbalance", "utilization", "imbalance"
    );

    let (u0, d0) = run_point(&spec, None);
    println!(
        "{:>9.0}%  {:>11.4} {:>10.3}  {:>11.4} {:>10.3}",
        0.0, u0, d0, u0, d0
    );
    for spread in [0.2, 0.4, 0.6, 0.8] {
        let (ub, db) = run_point(&spec, Some((HeterogeneityKind::Bandwidth, spread)));
        let (us, ds) = run_point(&spec, Some((HeterogeneityKind::Storage, spread)));
        println!(
            "{:>9.0}%  {:>11.4} {:>10.3}  {:>11.4} {:>10.3}",
            spread * 100.0,
            ub,
            db,
            us,
            ds
        );
    }

    println!("\nReading: storage imbalance should barely move utilization (replicas");
    println!("just land elsewhere), while bandwidth imbalance costs more — but the");
    println!("semi-continuous stack keeps the loss small, matching §4.6.");
}
