//! Quickstart: run one trial of the paper's Small system and print what
//! happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use semi_continuous_vod::prelude::*;

fn main() {
    // The paper's Small system: 5 servers × 100 Mb/s serving 10–30 minute
    // clips at 3 Mb/s, ~2.2 replicas per video.
    let spec = SystemSpec::small_paper();

    // Policy P4 — even (popularity-oblivious) placement, dynamic request
    // migration, 20 % client staging — at the literature's usual skew.
    let config = SimConfig::builder(spec)
        .policy(Policy::P4)
        .theta(0.271)
        .duration_hours(24.0)
        .warmup_hours(1.0)
        .seed(2001)
        .build();

    let outcome = Simulation::run(&config);

    println!("semi-continuous transmission, Small system, policy P4 (θ = 0.271)");
    println!("----------------------------------------------------------------");
    println!(
        "simulated                {:>10.1} h (after 1 h warm-up)",
        outcome.measured_hours
    );
    println!("requests arrived         {:>10}", outcome.stats.arrivals);
    println!(
        "accepted directly        {:>10}",
        outcome.stats.accepted_direct
    );
    println!(
        "accepted via migration   {:>10}",
        outcome.stats.accepted_via_migration
    );
    println!("rejected                 {:>10}", outcome.stats.rejected);
    println!("streams completed        {:>10}", outcome.completions);
    println!(
        "acceptance ratio         {:>10.4}",
        outcome.acceptance_ratio()
    );
    println!("bandwidth utilization    {:>10.4}", outcome.utilization);
    println!();
    println!("per-server utilization:");
    for (i, u) in outcome.per_server_utilization.iter().enumerate() {
        let bar = "#".repeat((u * 40.0).round() as usize);
        println!("  s{i}  {u:.3}  {bar}");
    }
}
