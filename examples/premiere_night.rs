//! Premiere night: everyone wants the same movie at 8 pm.
//!
//! The hardest case for a unicast VoD cluster is a synchronized demand
//! spike for a single title — exactly the regime the paper's negative-θ
//! experiments model. This example compares four front-end strategies on
//! the Small system under extreme skew (θ = −1.5, the top title draws the
//! bulk of requests):
//!
//! 1. drop on rejection (the paper's baseline),
//! 2. a 5-minute waitlist,
//! 3. the waitlist with multicast batching (one stream, whole cohort),
//! 4. batching plus dynamic replication (extra copies appear on quiet
//!    servers as the spike persists).
//!
//! ```text
//! cargo run --release --example premiere_night
//! ```

use semi_continuous_vod::prelude::*;

struct Row {
    label: &'static str,
    acceptance: f64,
    utilization: f64,
    batched: u64,
    replicas: u64,
    mean_wait: f64,
}

fn run(label: &'static str, waitlist: Option<WaitlistSpec>, replication: bool) -> Row {
    let mut b = SimConfig::builder(SystemSpec::small_paper())
        .theta(-1.5)
        .staging_fraction(0.2)
        .duration_hours(24.0)
        .warmup_hours(1.0)
        .seed(88);
    if let Some(spec) = waitlist {
        b = b.waitlist_spec(spec);
    }
    if replication {
        b = b.replication(ReplicationSpec::default_paper_scale());
    }
    let out = Simulation::run(&b.build());
    Row {
        label,
        acceptance: out.acceptance_ratio(),
        utilization: out.utilization,
        batched: out.waitlist.batched,
        replicas: out.replication.replicas_created,
        mean_wait: out.waitlist.mean_served_wait_secs(),
    }
}

fn main() {
    println!("Small system, θ = -1.5 (one blockbuster dominates), 24 h\n");
    let rows = [
        run("drop on rejection", None, false),
        run(
            "waitlist 5 min",
            Some(WaitlistSpec::new(300.0, 10_000)),
            false,
        ),
        run(
            "waitlist + batching",
            Some(WaitlistSpec::batching(300.0, 10_000)),
            false,
        ),
        run(
            "batching + replication",
            Some(WaitlistSpec::batching(300.0, 10_000)),
            true,
        ),
    ];
    println!(
        "{:<24}  {:>10}  {:>11}  {:>8}  {:>8}  {:>9}",
        "strategy", "acceptance", "utilization", "batched", "replicas", "wait (s)"
    );
    for r in rows {
        println!(
            "{:<24}  {:>10.4}  {:>11.4}  {:>8}  {:>8}  {:>9.1}",
            r.label, r.acceptance, r.utilization, r.batched, r.replicas, r.mean_wait
        );
    }
    println!("\nReading: dropping strands most of the audience; a queue alone only");
    println!("shifts the pain; multicast batching turns the correlated demand into");
    println!("shared streams; replication then fills the remaining capacity gap by");
    println!("spreading the blockbuster across more servers.");
}
