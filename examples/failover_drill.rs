//! Failover drill: what happens to viewers when servers crash?
//!
//! §3.1 observes that dynamic request migration "can also be used to
//! engineer a limited degree of fault tolerance into the server". This
//! example injects server failures (exponential MTBF, 30-minute repairs)
//! into the Small system and compares viewer survival with and without
//! DRM-based emergency evacuation.
//!
//! ```text
//! cargo run --release --example failover_drill
//! ```

use semi_continuous_vod::admission::MigrationPolicy;
use semi_continuous_vod::prelude::*;

fn drill(mtbf_hours: f64, evacuate: bool) -> (f64, u64, u64, u64) {
    let mut builder = SimConfig::builder(SystemSpec::small_paper())
        .theta(0.271)
        .staging_fraction(0.2)
        .duration_hours(48.0)
        .warmup_hours(1.0)
        .failures(mtbf_hours, 0.5)
        .seed(99);
    if evacuate {
        builder = builder.migration(MigrationPolicy {
            handoff_latency_secs: 0.0,
            ..MigrationPolicy::single_hop()
        });
    }
    let out = Simulation::run(&builder.build());
    (
        out.utilization,
        out.server_failures,
        out.stats.relocated_on_failure,
        out.stats.dropped_on_failure,
    )
}

fn main() {
    println!("Small system, 48 h drill, repairs take 30 min on average\n");
    println!(
        "{:>8}  {:>9}  {:>28}  {:>28}",
        "MTBF", "failures", "with DRM evacuation", "without (drop all)"
    );
    println!(
        "{:>8}  {:>9}  {:>10} {:>8} {:>8}  {:>10} {:>8} {:>8}",
        "", "", "util", "saved", "lost", "util", "saved", "lost"
    );
    for mtbf in [4.0, 8.0, 16.0, 32.0] {
        let (u1, f1, saved1, lost1) = drill(mtbf, true);
        let (u0, _f0, saved0, lost0) = drill(mtbf, false);
        println!(
            "{:>7.0}h  {:>9}  {:>10.4} {:>8} {:>8}  {:>10.4} {:>8} {:>8}",
            mtbf, f1, u1, saved1, lost1, u0, saved0, lost0
        );
    }
    println!("\nReading: every crash strands ~33 viewers; DRM re-homes the share of");
    println!("them whose videos have replicas on servers with free slots, so the");
    println!("'saved' column is the service-continuity win of semi-continuous");
    println!("transmission. Utilization moves little — the cluster stays busy —");
    println!("but without DRM every one of those viewers goes dark.");
}
