//! Capacity planning with the analytical model, checked by simulation.
//!
//! Before buying hardware, an operator can ask: at 100 % offered load,
//! what utilization does a single server of a given size achieve under
//! plain continuous transmission? The Erlang-B loss model answers in
//! microseconds; this example validates it against the simulator across a
//! range of server-to-view-bandwidth ratios (SVBR), then shows how much
//! semi-continuous transmission (staging) claws back on top.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use semi_continuous_vod::analysis::erlang::{erlang_b, expected_utilization_vs_svbr};
use semi_continuous_vod::cluster::PlacementStrategy;
use semi_continuous_vod::core::config::StagingSpec;
use semi_continuous_vod::prelude::*;

fn main() {
    let view = 3.0;
    println!("single server at 100% offered load, 3 Mb/s streams");
    println!(
        "{:>6}  {:>10}  {:>12}  {:>12}  {:>12}",
        "SVBR", "blocking", "analytic", "simulated", "with staging"
    );

    for k in [5usize, 10, 20, 33, 66, 100] {
        let bandwidth = k as f64 * view;
        let system = SystemSpec {
            name: format!("plan-{k}"),
            n_servers: 1,
            server_bandwidth_mbps: bandwidth,
            server_disk_gb: 10_000.0,
            n_videos: 50,
            video_length_secs: (600.0, 1800.0),
            view_rate_mbps: view,
            client_receive_cap_mbps: 30.0,
            avg_copies: 1.0,
        };
        let base = SimConfig::builder(system)
            .theta(1.0)
            .placement(PlacementStrategy::Even { avg_copies: 1.0 })
            .duration_hours(48.0)
            .warmup_hours(2.0);

        // Continuous transmission (the Erlang-B regime).
        let continuous = base
            .clone()
            .staging(StagingSpec::AbsoluteMb(0.0))
            .scheduler(SchedulerKind::NoWorkahead)
            .build();
        let sim = run_trials(&continuous, TrialPlan::new(3, 11));
        let sim_util = semi_continuous_vod::core::runner::utilization_summary(&sim).mean;

        // Semi-continuous: EFTF + 20 % staging.
        let staged = base
            .staging(StagingSpec::FractionOfAvgVideo(0.2))
            .scheduler(SchedulerKind::Eftf)
            .build();
        let st = run_trials(&staged, TrialPlan::new(3, 11));
        let st_util = semi_continuous_vod::core::runner::utilization_summary(&st).mean;

        println!(
            "{:>6}  {:>9.3}%  {:>12.4}  {:>12.4}  {:>12.4}",
            k,
            100.0 * erlang_b(k, k as f64),
            expected_utilization_vs_svbr(bandwidth, view),
            sim_util,
            st_util,
        );
    }

    println!("\nReading: the analytic column should track the simulated one within");
    println!("a couple of points (validating the simulator), utilization should grow");
    println!("with SVBR (the paper's 'large SVBR makes it hard to do poorly'), and");
    println!("staging should add several points at every size.");
}
