//! Interactive viewers: the cost of the pause button.
//!
//! §6 lists "interactivity in semi-continuous transmission" as future
//! work. This example implements it: every viewer pauses once for 1–10
//! minutes, and we measure how much utilization that costs at three
//! staging levels. With generous staging, a paused stream keeps receiving
//! into the client buffer and often *finishes transmission during the
//! pause*, releasing its server slot early — the pause becomes free.
//!
//! ```text
//! cargo run --release --example interactive_viewers
//! ```

use semi_continuous_vod::prelude::*;

fn run(pause_probability: f64, staging_fraction: f64) -> (f64, u64) {
    let mut builder = SimConfig::builder(SystemSpec::small_paper())
        .theta(0.271)
        .staging_fraction(staging_fraction)
        .duration_hours(24.0)
        .warmup_hours(1.0)
        .seed(7);
    if pause_probability > 0.0 {
        builder = builder.interactivity(pause_probability, 60.0, 600.0);
    }
    let out = Simulation::run(&builder.build());
    (out.utilization, out.pauses_applied)
}

fn main() {
    println!("Small system, every viewer may pause once for 1-10 minutes\n");
    println!(
        "{:>12}  {:>14}  {:>14}  {:>14}",
        "P(pause)", "no staging", "20% staging", "100% staging"
    );
    for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let (u0, _) = run(p, 0.0);
        let (u20, _) = run(p, 0.2);
        let (u100, pauses) = run(p, 1.0);
        println!(
            "{:>11.0}%  {:>14.4}  {:>14.4}  {:>14.4}   ({pauses} pauses hit live streams)",
            p * 100.0,
            u0,
            u20,
            u100
        );
    }
    println!("\nReading: without staging the pause column melts utilization (slots");
    println!("sit idle while viewers make tea); with a full-object buffer the");
    println!("transmission simply runs ahead and pauses cost nothing.");
}
