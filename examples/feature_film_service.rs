//! A feature-film VoD operator sizing question: how much does admission
//! policy matter on the paper's Large system (20 × 300 Mb/s, 1–2 h films)
//! as demand skew varies?
//!
//! Compares three operating points across demand skews:
//!   * P1 — naive: even placement, no migration, no staging;
//!   * P4 — the paper's proposal: even placement + DRM + 20 % staging;
//!   * P8 — the oracle: perfectly predictive placement + DRM + staging.
//!
//! The paper's claim: P4 ≈ P8 for θ ∈ [0, 1] — you do not need to predict
//! popularity unless demand is pathologically skewed.
//!
//! ```text
//! cargo run --release --example feature_film_service
//! ```

use semi_continuous_vod::analysis::Table;
use semi_continuous_vod::prelude::*;

fn main() {
    let spec = SystemSpec::large_paper();
    let thetas = [-1.0, -0.5, 0.0, 0.5, 1.0];
    let policies = [Policy::P1, Policy::P4, Policy::P8];

    println!(
        "Large system — {} servers × {} Mb/s, {} films",
        spec.n_servers, spec.server_bandwidth_mbps, spec.n_videos
    );
    println!("3 trials × 24 simulated hours per cell; offered load 100 %\n");

    let mut table = Table::new(vec![
        "zipf theta",
        "P1 naive",
        "P4 oblivious+DRM+staging",
        "P8 predictive oracle",
    ]);

    for &theta in &thetas {
        let mut row = vec![format!("{theta:+.2}")];
        for &policy in &policies {
            let config = SimConfig::builder(spec.clone())
                .policy(policy)
                .theta(theta)
                .duration_hours(24.0)
                .warmup_hours(1.0)
                .build();
            let outcomes = run_trials(&config, TrialPlan::new(3, 42));
            let summary = semi_continuous_vod::core::runner::utilization_summary(&outcomes);
            row.push(format!("{:.4} ± {:.4}", summary.mean, summary.ci95));
        }
        table.push_row(row);
    }

    println!("{}", table.to_text());
    println!("Reading: P4 should track P8 closely for theta >= 0; only under");
    println!("extreme skew (negative theta) does predictive placement pull ahead.");
}
