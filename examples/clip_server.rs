//! A short-clip server (news/sports highlights) asking the paper's §4.3
//! question directly: how much client disk is worth dedicating to staging?
//!
//! Sweeps the staging buffer from 0 % to 100 % of the average clip size on
//! the Small system and prints utilization and rejection rate — the knee
//! should appear around 20 %.
//!
//! ```text
//! cargo run --release --example clip_server
//! ```

use semi_continuous_vod::prelude::*;

fn main() {
    let spec = SystemSpec::small_paper();
    println!(
        "Small system — {} servers × {} Mb/s, {}–{} min clips, receive cap {} Mb/s",
        spec.n_servers,
        spec.server_bandwidth_mbps,
        spec.video_length_secs.0 / 60.0,
        spec.video_length_secs.1 / 60.0,
        spec.client_receive_cap_mbps,
    );
    println!("even placement, no migration, θ = 0.5, 3 × 24 h per point\n");
    println!(
        "{:>8}  {:>12}  {:>10}  {:>12}",
        "staging", "utilization", "rejected", "avg stage MB"
    );

    for fraction in [0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 1.0] {
        let config = SimConfig::builder(spec.clone())
            .theta(0.5)
            .staging_fraction(fraction)
            .duration_hours(24.0)
            .warmup_hours(1.0)
            .build();
        let outcomes = run_trials(&config, TrialPlan::new(3, 7));
        let util = semi_continuous_vod::core::runner::utilization_summary(&outcomes);
        let rejected: u64 = outcomes.iter().map(|o| o.stats.rejected).sum();
        let arrivals: u64 = outcomes.iter().map(|o| o.stats.arrivals).sum();
        // Staging capacity in megabytes for operator intuition.
        let avg_clip_mb =
            (spec.video_length_secs.0 + spec.video_length_secs.1) / 2.0 * spec.view_rate_mbps;
        let staging_mbytes = fraction * avg_clip_mb / 8.0;
        println!(
            "{:>7.0}%  {:>12.4}  {:>9.2}%  {:>12.1}",
            fraction * 100.0,
            util.mean,
            100.0 * rejected as f64 / arrivals as f64,
            staging_mbytes,
        );
    }

    println!("\nReading: utilization climbs steeply until ~20% of a clip is");
    println!("stageable at the client, then flattens — matching the paper's");
    println!("observation that 20% client buffers capture nearly all the benefit.");
}
